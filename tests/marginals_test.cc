#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "marginals/dwork.h"
#include "marginals/efpa.h"
#include "marginals/marginal_method.h"
#include "marginals/noisefirst.h"
#include "marginals/postprocess.h"
#include "marginals/structurefirst.h"

namespace dpcopula::marginals {
namespace {

std::vector<double> SmoothHistogram(std::size_t n) {
  // Gaussian-bump counts: the smooth, large-domain margin EFPA excels at.
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z =
        (static_cast<double>(i) - static_cast<double>(n) / 2.0) /
        (static_cast<double>(n) / 6.0);
    h[i] = 1000.0 * std::exp(-0.5 * z * z);
  }
  return h;
}

double L2Error(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc);
}

TEST(DworkTest, ValidatesInput) {
  Rng rng(1);
  EXPECT_FALSE(PublishDworkHistogram({}, 1.0, &rng).ok());
}

TEST(DworkTest, PreservesLengthAndApproximatesCounts) {
  Rng rng(3);
  const std::vector<double> counts = {100, 200, 300, 400};
  auto noisy = PublishDworkHistogram(counts, 10.0, &rng);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), 4u);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR((*noisy)[i], counts[i], 5.0);  // b = 0.1; 5 is ~50 sigma.
  }
}

TEST(DworkTest, NoiseScalesInverselyWithEpsilon) {
  Rng rng(5);
  const std::vector<double> zeros(200, 0.0);
  double err_tight = 0.0, err_loose = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    err_tight += L2Error(zeros, *PublishDworkHistogram(zeros, 10.0, &rng));
    err_loose += L2Error(zeros, *PublishDworkHistogram(zeros, 0.1, &rng));
  }
  EXPECT_GT(err_loose, 10.0 * err_tight);
}

TEST(EfpaTest, ValidatesInput) {
  Rng rng(7);
  EXPECT_FALSE(PublishEfpaHistogram({}, 1.0, &rng).ok());
  EXPECT_FALSE(PublishEfpaHistogram({1.0}, 0.0, &rng).ok());
  EfpaOptions bad;
  bad.selection_fraction = 1.0;
  EXPECT_FALSE(PublishEfpaHistogram({1.0, 2.0}, 1.0, &rng, bad).ok());
}

TEST(EfpaTest, ExpectedErrorTradeoff) {
  // tail[k] decreasing in k, noise term increasing: expected error should
  // have an interior structure, and keeping everything must cost more noise
  // than keeping one coefficient.
  std::vector<double> tail(101, 0.0);
  for (std::size_t i = 100; i-- > 0;) {
    tail[i] = tail[i + 1] + 1.0;  // Flat spectrum.
  }
  const double e1 = EfpaExpectedError(tail, 1, 1.0);
  const double e100 = EfpaExpectedError(tail, 100, 1.0);
  EXPECT_LT(e1, e100);  // Flat spectra favor tiny k.
}

TEST(EfpaTest, ReconstructsSmoothHistogramAccurately) {
  Rng rng(11);
  const auto counts = SmoothHistogram(256);
  auto noisy = PublishEfpaHistogram(counts, 1.0, &rng);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), counts.size());
  // Relative L2 error should be small for a smooth signal at epsilon = 1.
  EXPECT_LT(L2Error(counts, *noisy) / L2Error(counts, std::vector<double>(
                                                          counts.size(), 0.0)),
            0.1);
}

TEST(EfpaTest, BeatsDworkOnSmoothLargeDomainHistograms) {
  // The reason DPCopula uses EFPA for margins (paper §4.1). Averaged over
  // repetitions to keep the test stable.
  Rng rng(13);
  const auto counts = SmoothHistogram(512);
  const double eps = 0.1;
  double efpa_err = 0.0, dwork_err = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    efpa_err += L2Error(counts, *PublishEfpaHistogram(counts, eps, &rng));
    dwork_err += L2Error(counts, *PublishDworkHistogram(counts, eps, &rng));
  }
  EXPECT_LT(efpa_err, dwork_err);
}

TEST(EfpaTest, TotalMassApproximatelyPreserved) {
  Rng rng(17);
  const auto counts = SmoothHistogram(128);
  double true_total = 0.0;
  for (double c : counts) true_total += c;
  auto noisy = PublishEfpaHistogram(counts, 1.0, &rng);
  ASSERT_TRUE(noisy.ok());
  double noisy_total = 0.0;
  for (double c : *noisy) noisy_total += c;
  EXPECT_NEAR(noisy_total / true_total, 1.0, 0.05);
}

TEST(MarginalMethodTest, DispatchesAllMethods) {
  Rng rng(19);
  const std::vector<double> counts = {10, 20, 30};
  EXPECT_TRUE(
      PublishMarginal(MarginalMethod::kEfpa, counts, 1.0, &rng).ok());
  EXPECT_TRUE(
      PublishMarginal(MarginalMethod::kDwork, counts, 1.0, &rng).ok());
  EXPECT_TRUE(
      PublishMarginal(MarginalMethod::kNoiseFirst, counts, 1.0, &rng).ok());
  EXPECT_TRUE(
      PublishMarginal(MarginalMethod::kStructureFirst, counts, 1.0, &rng)
          .ok());
}

TEST(StructureFirstTest, ValidatesInput) {
  Rng rng(61);
  EXPECT_FALSE(PublishStructureFirstHistogram({}, 1.0, &rng).ok());
  EXPECT_FALSE(PublishStructureFirstHistogram({1.0, 2.0}, 0.0, &rng).ok());
  StructureFirstOptions bad;
  bad.structure_budget_fraction = 1.0;
  EXPECT_FALSE(
      PublishStructureFirstHistogram({1.0, 2.0}, 1.0, &rng, bad).ok());
}

TEST(StructureFirstTest, OutputLengthAndMassPreserved) {
  Rng rng(67);
  std::vector<double> counts(150, 40.0);
  auto out = PublishStructureFirstHistogram(counts, 2.0, &rng);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 150u);
  double total = 0.0;
  for (double v : *out) total += v;
  EXPECT_NEAR(total, 150.0 * 40.0, 300.0);
}

TEST(StructureFirstTest, FindsStepBoundaryAtHighBudget) {
  Rng rng(71);
  std::vector<double> counts(100, 5.0);
  for (std::size_t i = 60; i < 100; ++i) counts[i] = 500.0;
  auto out = PublishStructureFirstHistogram(counts, 20.0, &rng);
  ASSERT_TRUE(out.ok());
  // Bins deep inside each level should be near the level values.
  EXPECT_NEAR((*out)[20], 5.0, 30.0);
  EXPECT_NEAR((*out)[90], 500.0, 60.0);
}

TEST(StructureFirstTest, BeatsDworkOnPiecewiseConstantAtLowBudget) {
  Rng rng(73);
  std::vector<double> counts(200, 10.0);
  for (std::size_t i = 40; i < 90; ++i) counts[i] = 400.0;
  const double eps = 0.05;
  double sf_err = 0.0, dwork_err = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    sf_err += L2Error(counts,
                      *PublishStructureFirstHistogram(counts, eps, &rng));
    dwork_err +=
        L2Error(counts, *PublishDworkHistogram(counts, eps, &rng));
  }
  EXPECT_LT(sf_err, dwork_err);
}

TEST(NoiseFirstTest, ValidatesInput) {
  Rng rng(41);
  EXPECT_FALSE(PublishNoiseFirstHistogram({}, 1.0, &rng).ok());
  EXPECT_FALSE(PublishNoiseFirstHistogram({1.0}, 0.0, &rng).ok());
}

TEST(NoiseFirstTest, MergeRecoversPiecewiseConstantSignal) {
  // A two-level step function with zero noise variance: the DP should find
  // exactly the step boundary and reproduce the input.
  std::vector<double> step(40, 5.0);
  for (std::size_t i = 20; i < 40; ++i) step[i] = 50.0;
  const auto merged = MergeNoisyHistogram(step, 0.0, 8);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(merged[i], step[i], 1e-9) << i;
  }
}

TEST(NoiseFirstTest, MergeAveragesAwayNoiseOnFlatSignal) {
  // Flat true signal + large declared noise variance: the optimum is one
  // bucket, whose mean has far less noise than any single bin.
  Rng rng(43);
  std::vector<double> noisy(100);
  for (double& v : noisy) v = 50.0 + 10.0 * rng.NextGaussian();
  const auto merged = MergeNoisyHistogram(noisy, 100.0, 16);
  // All output bins equal (single bucket) and close to 50.
  for (double v : merged) EXPECT_NEAR(v, merged[0], 1e-9);
  EXPECT_NEAR(merged[0], 50.0, 4.0);
}

TEST(NoiseFirstTest, BeatsDworkOnPiecewiseConstantHistograms) {
  Rng rng(47);
  std::vector<double> counts(200, 10.0);
  for (std::size_t i = 50; i < 120; ++i) counts[i] = 300.0;
  const double eps = 0.05;
  double nf_err = 0.0, dwork_err = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    nf_err += L2Error(counts,
                      *PublishNoiseFirstHistogram(counts, eps, &rng));
    dwork_err +=
        L2Error(counts, *PublishDworkHistogram(counts, eps, &rng));
  }
  EXPECT_LT(nf_err, dwork_err);
}

TEST(NoiseFirstTest, OutputLengthMatchesInput) {
  Rng rng(53);
  const auto out = PublishNoiseFirstHistogram(
      std::vector<double>(37, 5.0), 1.0, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 37u);
}

TEST(SimplexProjectionTest, PreservesTotalAndNonNegativity) {
  const std::vector<double> noisy = {5.0, -3.0, 2.0, -1.0, 7.0};
  const auto out = ProjectToSimplex(noisy, 10.0);
  double total = 0.0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(SimplexProjectionTest, AlreadyFeasibleInputUnchanged) {
  const std::vector<double> clean = {1.0, 2.0, 3.0};
  const auto out = ProjectToSimplex(clean, 6.0);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_NEAR(out[i], clean[i], 1e-12);
  }
}

TEST(SimplexProjectionTest, NegativeTotalClampsToZero) {
  const auto out = ProjectToSimplex({1.0, 2.0}, -5.0);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SimplexProjectionTest, ScalesUpWhenPositivePartTooSmall) {
  const auto out = ProjectToSimplex({1.0, -10.0, 1.0}, 8.0);
  EXPECT_NEAR(out[0], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_NEAR(out[2], 4.0, 1e-12);
}

TEST(SimplexProjectionTest, RemovesClampingBias) {
  // Pure-noise histogram: naive clamping keeps ~half the bins positive with
  // mean b/2 each; the projection to the (near-zero) noisy total must shed
  // almost all of that phantom mass.
  Rng rng(31);
  const std::size_t n = 1000;
  std::vector<double> noise(n);
  double total = 0.0;
  for (double& v : noise) {
    v = (rng.NextDouble() - 0.5) * 100.0;
    total += v;
  }
  double clamped_mass = 0.0;
  for (double v : noise) clamped_mass += std::max(0.0, v);
  const auto projected = ProjectToSimplex(noise, std::max(0.0, total));
  double projected_mass = 0.0;
  for (double v : projected) projected_mass += v;
  // The projection hits the unbiased noisy total exactly, while naive
  // clamping inflates the mass by ~E[max(0, noise)] per bin (~12.5k here).
  EXPECT_NEAR(projected_mass, std::max(0.0, total), 1e-6);
  EXPECT_GT(clamped_mass, 5.0 * projected_mass);
}

TEST(SimplexProjectionTest, ProjectToNoisyTotalMatchesExplicit) {
  const std::vector<double> noisy = {4.0, -1.0, 3.0};
  const auto a = ProjectToNoisyTotal(noisy);
  const auto b = ProjectToSimplex(noisy, 6.0);
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(SimplexProjectionTest, EmptyInput) {
  EXPECT_TRUE(ProjectToSimplex({}, 5.0).empty());
}

class EfpaEpsilonSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(EfpaEpsilonSweepTest, OutputFiniteAtAllBudgets) {
  Rng rng(23);
  const auto counts = SmoothHistogram(200);
  auto noisy = PublishEfpaHistogram(counts, GetParam(), &rng);
  ASSERT_TRUE(noisy.ok());
  for (double v : *noisy) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Budgets, EfpaEpsilonSweepTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace dpcopula::marginals
