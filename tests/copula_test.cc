#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "copula/gaussian_copula.h"
#include "copula/kendall_estimator.h"
#include "copula/mle_estimator.h"
#include "copula/pseudo_obs.h"
#include "copula/sampler.h"
#include "data/generator.h"
#include "linalg/cholesky.h"
#include "stats/kendall.h"

namespace dpcopula::copula {
namespace {

data::Table CorrelatedTable(std::size_t n, double rho, Rng* rng,
                            std::int64_t domain = 1000) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("x", domain),
      data::MarginSpec::Gaussian("y", domain)};
  auto corr = data::Equicorrelation(2, rho);
  auto t = data::GenerateGaussianDependent(specs, *corr, n, rng);
  return *t;
}

TEST(PseudoObsTest, ValuesStrictlyInsideUnitInterval) {
  Rng rng(71);
  data::Table t = CorrelatedTable(500, 0.5, &rng);
  auto pseudo = PseudoObservations(t);
  ASSERT_TRUE(pseudo.ok());
  ASSERT_EQ(pseudo->size(), 2u);
  for (const auto& col : *pseudo) {
    ASSERT_EQ(col.size(), 500u);
    for (double u : col) {
      EXPECT_GT(u, 0.0);
      EXPECT_LT(u, 1.0);
    }
  }
}

TEST(PseudoObsTest, MonotoneInValue) {
  data::Table t(data::Schema({{"a", 10}}));
  ASSERT_TRUE(t.AppendRow({0}).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  ASSERT_TRUE(t.AppendRow({9}).ok());
  auto pseudo = PseudoObservations(t);
  ASSERT_TRUE(pseudo.ok());
  EXPECT_LT((*pseudo)[0][0], (*pseudo)[0][1]);
  EXPECT_LT((*pseudo)[0][1], (*pseudo)[0][2]);
}

TEST(PseudoObsTest, NormalScoresFinite) {
  Rng rng(73);
  data::Table t = CorrelatedTable(200, 0.3, &rng);
  auto pseudo = PseudoObservations(t);
  ASSERT_TRUE(pseudo.ok());
  const auto scores = NormalScores(*pseudo);
  for (const auto& col : scores) {
    for (double z : col) EXPECT_TRUE(std::isfinite(z));
  }
}

TEST(GaussianCopulaTest, IdentityCorrelationHasUnitDensity) {
  auto c = GaussianCopula::Create(linalg::Matrix::Identity(3));
  ASSERT_TRUE(c.ok());
  auto ld = c->LogDensity({0.3, 0.5, 0.9});
  ASSERT_TRUE(ld.ok());
  EXPECT_NEAR(*ld, 0.0, 1e-12);  // c_I(u) == 1 everywhere.
}

TEST(GaussianCopulaTest, RejectsNonCorrelationInput) {
  linalg::Matrix bad = linalg::Matrix::FromRows({{2.0, 0.0}, {0.0, 1.0}});
  EXPECT_FALSE(GaussianCopula::Create(bad).ok());
  linalg::Matrix indef =
      linalg::Matrix::FromRows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_FALSE(GaussianCopula::Create(indef).ok());
}

TEST(GaussianCopulaTest, DensityFavorsConcordantPointsUnderPositiveRho) {
  auto corr = data::Equicorrelation(2, 0.8);
  auto c = GaussianCopula::Create(*corr);
  ASSERT_TRUE(c.ok());
  const double concordant = *c->LogDensity({0.9, 0.9});
  const double discordant = *c->LogDensity({0.9, 0.1});
  EXPECT_GT(concordant, discordant);
}

TEST(GaussianCopulaTest, LogLikelihoodPeaksNearTrueCorrelation) {
  Rng rng(79);
  data::Table t = CorrelatedTable(3000, 0.6, &rng);
  auto pseudo = PseudoObservations(t);
  ASSERT_TRUE(pseudo.ok());
  double best_rho = -2.0, best_ll = -1e300;
  for (double rho = -0.8; rho <= 0.85; rho += 0.1) {
    auto corr = data::Equicorrelation(2, rho);
    auto c = GaussianCopula::Create(*corr);
    ASSERT_TRUE(c.ok());
    const double ll = *c->LogLikelihood(*pseudo);
    if (ll > best_ll) {
      best_ll = ll;
      best_rho = rho;
    }
  }
  EXPECT_NEAR(best_rho, 0.6, 0.15);
}

TEST(GaussianCopulaTest, AicPrefersTrueModel) {
  Rng rng(83);
  data::Table t = CorrelatedTable(2000, 0.6, &rng);
  auto pseudo = PseudoObservations(t);
  ASSERT_TRUE(pseudo.ok());
  auto good = GaussianCopula::Create(*data::Equicorrelation(2, 0.6));
  auto bad = GaussianCopula::Create(*data::Equicorrelation(2, -0.6));
  EXPECT_LT(*good->Aic(*pseudo), *bad->Aic(*pseudo));
}

TEST(NormalScoresCorrelationTest, RecoversGeneratingCorrelation) {
  Rng rng(89);
  data::Table t = CorrelatedTable(5000, 0.7, &rng);
  auto pseudo = PseudoObservations(t);
  ASSERT_TRUE(pseudo.ok());
  auto corr = NormalScoresCorrelation(NormalScores(*pseudo));
  ASSERT_TRUE(corr.ok());
  EXPECT_NEAR((*corr)(0, 1), 0.7, 0.05);
  EXPECT_DOUBLE_EQ((*corr)(0, 0), 1.0);
}

TEST(NormalScoresCorrelationTest, ValidatesInput) {
  EXPECT_FALSE(NormalScoresCorrelation({}).ok());
  EXPECT_FALSE(NormalScoresCorrelation({{1.0}, {1.0}}).ok());
  EXPECT_FALSE(NormalScoresCorrelation({{1.0, 2.0}, {1.0}}).ok());
}

TEST(KendallEstimatorTest, AdequateSampleSizeFormula) {
  // Paper §4.2: smallest integer n̂ with n̂ > 50·m(m-1)/ε₂ − 1. For an
  // integral 50·m(m-1)/ε₂ = X the answer is X itself (X > X − 1 holds).
  EXPECT_EQ(AdequateKendallSampleSize(2, 1.0), 100);
  EXPECT_EQ(AdequateKendallSampleSize(8, 0.5), 5600);
  // Non-integral X = 300/0.7 ≈ 428.57: the bound is 427.57, so 428 is
  // already adequate — the pre-fix code (which dropped the "−1") demanded
  // 429.
  EXPECT_EQ(AdequateKendallSampleSize(3, 0.7), 428);
  // X = 100/3: bound ≈ 32.33, smallest adequate integer is 33.
  EXPECT_EQ(AdequateKendallSampleSize(2, 3.0), 33);
}

TEST(KendallEstimatorTest, AdequateSampleSizeSaturatesForTinyEpsilon) {
  // 50·m(m-1)/ε₂ overflows int64 for tiny ε₂; the result must saturate,
  // not wrap (callers min() it against the real row count).
  EXPECT_EQ(AdequateKendallSampleSize(100, 1e-300),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(AdequateKendallSampleSize(2, 1e-12), 0);
}

TEST(KendallEstimatorTest, HighBudgetRecoversCorrelation) {
  Rng rng(97);
  data::Table t = CorrelatedTable(8000, 0.6, &rng);
  KendallEstimatorOptions opts;
  opts.subsample = false;
  auto est = EstimateKendallCorrelation(t, 100.0, &rng, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->correlation(0, 1), 0.6, 0.05);
  EXPECT_EQ(est->rows_used, 8000);
  EXPECT_TRUE(linalg::IsPositiveDefinite(est->correlation));
}

TEST(KendallEstimatorTest, SubsamplingActivates) {
  Rng rng(101);
  data::Table t = CorrelatedTable(50000, 0.5, &rng);
  KendallEstimatorOptions opts;
  opts.subsample = true;
  auto est = EstimateKendallCorrelation(t, 1.0, &rng, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->rows_used, AdequateKendallSampleSize(2, 1.0));
  EXPECT_LT(est->rows_used, 50000);
  // Correlation should still be in the right ballpark.
  EXPECT_GT(est->correlation(0, 1), 0.0);
}

TEST(KendallEstimatorTest, TinyBudgetStillYieldsValidCorrelation) {
  Rng rng(103);
  data::Table t = CorrelatedTable(500, 0.5, &rng);
  auto est = EstimateKendallCorrelation(t, 0.001, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(linalg::IsPositiveDefinite(est->correlation));
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(est->correlation(i, i), 1.0, 1e-9);
  }
}

TEST(KendallEstimatorTest, ValidatesInput) {
  Rng rng(107);
  data::Table t = CorrelatedTable(100, 0.5, &rng);
  EXPECT_FALSE(EstimateKendallCorrelation(t, 0.0, &rng).ok());
  auto one_col = t.Project({0});
  EXPECT_FALSE(EstimateKendallCorrelation(*one_col, 1.0, &rng).ok());
}

TEST(MleEstimatorTest, PartitionCountFormula) {
  // ceil(C(m,2) / (0.025 * eps2)).
  EXPECT_EQ(PaperMlePartitionCount(2, 1.0), 40);
  EXPECT_EQ(PaperMlePartitionCount(8, 0.5), 2240);
}

TEST(MleEstimatorTest, PartitionCountSaturatesForTinyEpsilon) {
  // C(m,2) / (0.025 ε₂) overflows int64 for tiny ε₂; the result must
  // saturate, not invoke UB via an out-of-range double→int64 cast
  // (the caller clamps against the real row count anyway).
  EXPECT_EQ(PaperMlePartitionCount(2, 1e-300),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(PaperMlePartitionCount(10000, 1e-12),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(PaperMlePartitionCount(2, 1e-3), 0);
}

TEST(MleEstimatorTest, TinyEpsilonAutoPartitionsStillFit) {
  // End-to-end at ε₂ = 1e-300: the saturated partition count must clamp
  // down to something that still fits the data instead of overflowing.
  Rng rng(131);
  data::Table t = CorrelatedTable(400, 0.5, &rng);
  auto est = EstimateMleCorrelation(t, 1e-300, &rng);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_GE(est->rows_per_partition, 10);
  EXPECT_TRUE(linalg::IsPositiveDefinite(est->correlation));
}

TEST(MleEstimatorTest, ReportsDroppedRemainderRows) {
  Rng rng(137);
  // 403 rows over 8 partitions: b = 50, 3 trailing rows dropped.
  data::Table t = CorrelatedTable(403, 0.5, &rng);
  MleEstimatorOptions opts;
  opts.num_partitions = 8;
  auto est = EstimateMleCorrelation(t, 5.0, &rng, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->rows_per_partition, 50);
  EXPECT_EQ(est->rows_dropped, 3);

  // Evenly divisible: nothing dropped.
  data::Table even = CorrelatedTable(400, 0.5, &rng);
  auto est2 = EstimateMleCorrelation(even, 5.0, &rng, opts);
  ASSERT_TRUE(est2.ok());
  EXPECT_EQ(est2->rows_dropped, 0);
}

TEST(MleEstimatorTest, HighBudgetRecoversCorrelation) {
  Rng rng(109);
  data::Table t = CorrelatedTable(20000, 0.6, &rng);
  MleEstimatorOptions opts;
  opts.num_partitions = 40;
  auto est = EstimateMleCorrelation(t, 50.0, &rng, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->num_partitions, 40);
  EXPECT_EQ(est->rows_per_partition, 500);
  EXPECT_NEAR(est->correlation(0, 1), 0.6, 0.08);
}

TEST(MleEstimatorTest, AutoPartitionsClampedForSmallData) {
  Rng rng(113);
  data::Table t = CorrelatedTable(300, 0.5, &rng);
  auto est = EstimateMleCorrelation(t, 0.5, &rng);
  ASSERT_TRUE(est.ok());
  // Paper rule would demand 80 partitions of < 4 rows; the clamp must keep
  // >= min_partition_rows rows in each.
  EXPECT_GE(est->rows_per_partition, 10);
  EXPECT_TRUE(linalg::IsPositiveDefinite(est->correlation));
}

TEST(MleEstimatorTest, ValidatesInput) {
  Rng rng(127);
  data::Table t = CorrelatedTable(100, 0.5, &rng);
  EXPECT_FALSE(EstimateMleCorrelation(t, -1.0, &rng).ok());
  auto one_col = t.Project({0});
  EXPECT_FALSE(EstimateMleCorrelation(*one_col, 1.0, &rng).ok());
}

TEST(SamplerTest, OutputRespectsSchemaAndRowCount) {
  Rng rng(131);
  data::Schema schema({{"a", 20}, {"b", 30}});
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.push_back(*stats::EmpiricalCdf::FromCounts(std::vector<double>(20, 1.0)));
  cdfs.push_back(*stats::EmpiricalCdf::FromCounts(std::vector<double>(30, 1.0)));
  auto out = SampleSyntheticData(schema, cdfs, *data::Equicorrelation(2, 0.4),
                                 1234, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1234u);
  EXPECT_TRUE(out->Validate().ok());
}

TEST(SamplerTest, ValidatesShapes) {
  Rng rng(137);
  data::Schema schema({{"a", 20}, {"b", 30}});
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.push_back(*stats::EmpiricalCdf::FromCounts(std::vector<double>(20, 1.0)));
  EXPECT_FALSE(SampleSyntheticData(schema, cdfs,
                                   *data::Equicorrelation(2, 0.4), 10, &rng)
                   .ok());
  cdfs.push_back(*stats::EmpiricalCdf::FromCounts(std::vector<double>(7, 1.0)));
  EXPECT_FALSE(SampleSyntheticData(schema, cdfs,
                                   *data::Equicorrelation(2, 0.4), 10, &rng)
                   .ok());
}

TEST(SamplerTest, PreservesMarginsAndDependence) {
  Rng rng(139);
  // Build skewed margins and a strong correlation, then sample and verify
  // both are reproduced.
  std::vector<double> counts_a(50), counts_b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    counts_a[i] = static_cast<double>(50 - i);  // Decreasing.
    counts_b[i] = static_cast<double>(i + 1);   // Increasing.
  }
  std::vector<stats::EmpiricalCdf> cdfs;
  cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts_a));
  cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts_b));
  data::Schema schema({{"a", 50}, {"b", 50}});
  const double rho = 0.7;
  auto out = SampleSyntheticData(schema, cdfs, *data::Equicorrelation(2, rho),
                                 30000, &rng);
  ASSERT_TRUE(out.ok());
  // Margin check: mean of column a should be below 25 (decreasing weights),
  // column b above.
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t r = 0; r < out->num_rows(); ++r) {
    mean_a += out->at(r, 0);
    mean_b += out->at(r, 1);
  }
  mean_a /= 30000.0;
  mean_b /= 30000.0;
  EXPECT_LT(mean_a, 21.0);
  EXPECT_GT(mean_b, 29.0);
  // Dependence check via Kendall's tau.
  auto tau = stats::KendallTau(out->column(0), out->column(1));
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, 2.0 / M_PI * std::asin(rho), 0.05);
}

TEST(KendallEstimatorTest, ThreadedMatchesSequentialExactly) {
  // Per-pair RNG streams make the estimate independent of the thread
  // count: 1 thread and 4 threads must agree bit for bit.
  Rng data_rng(151);
  std::vector<data::MarginSpec> specs;
  for (int j = 0; j < 5; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), 300));
  }
  auto t = data::GenerateGaussianDependent(
      specs, data::Ar1Correlation(5, 0.5), 3000, &data_rng);
  ASSERT_TRUE(t.ok());
  KendallEstimatorOptions seq, par;
  seq.subsample = false;
  seq.num_threads = 1;
  par.subsample = false;
  par.num_threads = 4;
  Rng r1(42), r2(42);
  auto a = EstimateKendallCorrelation(*t, 1.0, &r1, seq);
  auto b = EstimateKendallCorrelation(*t, 1.0, &r2, par);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->correlation.MaxAbsDiff(b->correlation), 0.0);
}

class KendallVsMleAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(KendallVsMleAccuracyTest, BothProduceValidCorrelations) {
  Rng rng(static_cast<std::uint64_t>(3000 + GetParam()));
  data::Table t = CorrelatedTable(4000, 0.5, &rng);
  auto kendall = EstimateKendallCorrelation(t, 0.5, &rng);
  auto mle = EstimateMleCorrelation(t, 0.5, &rng);
  ASSERT_TRUE(kendall.ok());
  ASSERT_TRUE(mle.ok());
  EXPECT_TRUE(linalg::IsPositiveDefinite(kendall->correlation));
  EXPECT_TRUE(linalg::IsPositiveDefinite(mle->correlation));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallVsMleAccuracyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace dpcopula::copula
