// Property suite for the PSD baseline: structural tree invariants, query
// consistency, and convergence to truth as the budget grows.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/psd.h"
#include "common/rng.h"
#include "data/generator.h"

namespace dpcopula::baselines {
namespace {

data::Table RandomTable(std::size_t n, std::size_t m, std::int64_t domain,
                        Rng* rng) {
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  return *data::GenerateGaussianDependent(
      specs, data::Ar1Correlation(m, 0.4), n, rng);
}

class PsdShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(PsdShapeTest, HighBudgetQueriesTrackTruth) {
  Rng rng(static_cast<std::uint64_t>(4000 + GetParam()));
  const std::size_t m = 1 + static_cast<std::size_t>(GetParam()) % 4;
  const std::int64_t domain = 16 << (GetParam() % 3);  // 16 / 32 / 64.
  data::Table t = RandomTable(3000, m, domain, &rng);
  auto tree = PsdTree::Build(t, 50.0, &rng);
  ASSERT_TRUE(tree.ok());
  // Aggregate over a batch of queries: near-noiseless PSD must land close
  // to the truth on average (uniformity error only).
  double total_err = 0.0, total_truth = 0.0;
  for (int q = 0; q < 40; ++q) {
    std::vector<std::int64_t> lo(m), hi(m);
    std::vector<double> dlo(m), dhi(m);
    for (std::size_t j = 0; j < m; ++j) {
      std::int64_t a = rng.NextInt64InRange(0, domain - 1);
      std::int64_t b = rng.NextInt64InRange(0, domain - 1);
      if (a > b) std::swap(a, b);
      lo[j] = a;
      hi[j] = b;
      dlo[j] = static_cast<double>(a);
      dhi[j] = static_cast<double>(b);
    }
    const double truth = static_cast<double>(t.RangeCount(dlo, dhi));
    total_err += std::fabs((*tree)->EstimateRangeCount(lo, hi) - truth);
    total_truth += truth;
  }
  // At high budget the residual error is PSD's within-leaf uniformity
  // error, which grows with dimensionality (the depth-limited tree covers
  // an exponentially larger domain): allow a tighter bound in low m.
  const double factor = (m <= 2) ? 0.3 : 1.0;
  EXPECT_LT(total_err, factor * total_truth + 200.0)
      << "m=" << m << " domain=" << domain;
}

INSTANTIATE_TEST_SUITE_P(Shapes, PsdShapeTest, ::testing::Range(0, 12));

TEST(PsdPropertyTest, DisjointQueriesAddUpToUnion) {
  // The tree answers are additive for a partition of the domain along one
  // axis: sum of the halves equals the full-domain answer exactly (both
  // reduce to the same node counts).
  Rng rng(4101);
  data::Table t = RandomTable(2000, 2, 64, &rng);
  auto tree = PsdTree::Build(t, 1.0, &rng);
  ASSERT_TRUE(tree.ok());
  const double whole =
      (*tree)->EstimateRangeCount({0, 0}, {63, 63});
  const double left = (*tree)->EstimateRangeCount({0, 0}, {31, 63});
  const double right = (*tree)->EstimateRangeCount({32, 0}, {63, 63});
  // Not exactly equal in general (different node covers), but any gap
  // comes only from the uniformity interpolation of partially covered
  // leaves; with cuts at the tree's own split values the decomposition is
  // close.
  EXPECT_NEAR(left + right, whole, std::fabs(whole) * 0.25 + 50.0);
}

TEST(PsdPropertyTest, MonotoneInQueryExtent) {
  // Enlarging a query box can only increase a nonnegative-count estimate
  // when counts are nonnegative; noisy counts may be negative, so instead
  // check outer box vs inner box differ by at most the outer total.
  Rng rng(4103);
  data::Table t = RandomTable(2000, 2, 64, &rng);
  auto tree = PsdTree::Build(t, 20.0, &rng);
  ASSERT_TRUE(tree.ok());
  const double inner = (*tree)->EstimateRangeCount({16, 16}, {47, 47});
  const double outer = (*tree)->EstimateRangeCount({0, 0}, {63, 63});
  EXPECT_LT(inner, outer + 100.0);
  EXPECT_NEAR(outer, 2000.0, 100.0);
}

TEST(PsdPropertyTest, DepthZeroDataStillWorks) {
  // Degenerate: all records identical. Medians collapse; the tree must
  // still build and answer.
  Rng rng(4105);
  data::Table t{data::Schema({{"a", 8}, {"b", 8}})};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({3, 5}).ok());
  }
  auto tree = PsdTree::Build(t, 5.0, &rng);
  ASSERT_TRUE(tree.ok());
  // Point queries are smeared by the uniformity assumption (by design);
  // the full-domain total must still be right.
  EXPECT_NEAR((*tree)->EstimateRangeCount({0, 0}, {7, 7}), 100.0, 60.0);
  EXPECT_GE((*tree)->EstimateRangeCount({3, 5}, {3, 5}), 0.0);
}

TEST(PsdPropertyTest, SingleDimensionDomain) {
  Rng rng(4107);
  data::Table t = RandomTable(1000, 1, 64, &rng);
  auto tree = PsdTree::Build(t, 10.0, &rng);
  ASSERT_TRUE(tree.ok());
  const double total = (*tree)->EstimateRangeCount({0}, {63});
  EXPECT_NEAR(total, 1000.0, 100.0);
}

TEST(PsdPropertyTest, ErrorShrinksWithBudget) {
  Rng rng(4109);
  data::Table t = RandomTable(4000, 2, 64, &rng);
  auto workload_error = [&](double epsilon) {
    double err = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      auto tree = PsdTree::Build(t, epsilon, &rng);
      for (int q = 0; q < 20; ++q) {
        std::vector<std::int64_t> lo(2), hi(2);
        std::vector<double> dlo(2), dhi(2);
        Rng qrng(static_cast<std::uint64_t>(900 + q));  // Same queries.
        for (std::size_t j = 0; j < 2; ++j) {
          std::int64_t a = qrng.NextInt64InRange(0, 63);
          std::int64_t b = qrng.NextInt64InRange(0, 63);
          if (a > b) std::swap(a, b);
          lo[j] = a;
          hi[j] = b;
          dlo[j] = static_cast<double>(a);
          dhi[j] = static_cast<double>(b);
        }
        const double truth = static_cast<double>(t.RangeCount(dlo, dhi));
        err += std::fabs((*tree)->EstimateRangeCount(lo, hi) - truth);
      }
    }
    return err;
  };
  EXPECT_LT(workload_error(10.0), workload_error(0.05));
}

TEST(PsdPropertyTest, MedianBudgetFractionSweep) {
  // Any fraction in (0,1) must produce a working tree.
  Rng rng(4111);
  data::Table t = RandomTable(1000, 2, 32, &rng);
  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    PsdOptions opts;
    opts.median_budget_fraction = fraction;
    auto tree = PsdTree::Build(t, 1.0, &rng, opts);
    ASSERT_TRUE(tree.ok()) << fraction;
    EXPECT_TRUE(std::isfinite(
        (*tree)->EstimateRangeCount({0, 0}, {31, 31})));
  }
}

}  // namespace
}  // namespace dpcopula::baselines
