// Coverage for the blocked (tiled) sampling kernel of Algorithm 3: the
// tile pipeline must be bit-identical across thread counts, statistically
// indistinguishable from the legacy scalar kernel it replaced, and the
// guide-table inversion must agree with std::lower_bound everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "copula/sampler.h"
#include "data/generator.h"
#include "data/schema.h"
#include "stats/empirical_cdf.h"
#include "stats/kendall.h"

namespace dpcopula::copula {
namespace {

struct SamplerFixture {
  data::Schema schema;
  std::vector<stats::EmpiricalCdf> cdfs;
  linalg::Matrix corr;
};

/// m skewed marginals (alternating increasing/decreasing mass, one with a
/// clamped zero tail) over domains of `domain` values, equicorrelated.
SamplerFixture MakeFixture(std::size_t m, std::int64_t domain, double rho) {
  SamplerFixture fx;
  std::vector<data::Attribute> attrs;
  for (std::size_t j = 0; j < m; ++j) {
    std::string name = "x";
    name += std::to_string(j);
    attrs.push_back({std::move(name), domain});
    std::vector<double> counts(static_cast<std::size_t>(domain));
    for (std::size_t v = 0; v < counts.size(); ++v) {
      counts[v] = (j % 2 == 0) ? static_cast<double>(v + 1)
                               : static_cast<double>(counts.size() - v);
    }
    if (j == 1) {
      // Zero tail: the tail-bias fix must keep these bins unreachable.
      counts[counts.size() - 1] = 0.0;
      counts[counts.size() - 2] = 0.0;
    }
    fx.cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts));
  }
  fx.schema = data::Schema(attrs);
  fx.corr = *data::Equicorrelation(m, rho);
  return fx;
}

bool TablesEqual(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

std::vector<double> ColumnCounts(const data::Table& t, std::size_t j,
                                 std::size_t domain) {
  std::vector<double> counts(domain, 0.0);
  for (const double v : t.column(j)) {
    counts[static_cast<std::size_t>(v)] += 1.0;
  }
  return counts;
}

/// Two-sample chi-squared statistic over per-value counts; under H0 (same
/// distribution) it is chi-squared with (#nonempty bins - 1) dof.
double TwoSampleChiSquared(const std::vector<double>& a,
                           const std::vector<double>& b, int* dof) {
  double na = 0.0, nb = 0.0;
  for (const double c : a) na += c;
  for (const double c : b) nb += c;
  const double ra = std::sqrt(nb / na), rb = std::sqrt(na / nb);
  double stat = 0.0;
  *dof = -1;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const double total = a[v] + b[v];
    if (total == 0.0) continue;
    const double diff = ra * a[v] - rb * b[v];
    stat += diff * diff / total;
    ++*dof;
  }
  return stat;
}

TEST(SamplerKernelTest, TiledOutputBitIdenticalAcross1248Threads) {
  const auto fx = MakeFixture(5, 40, 0.4);
  const std::size_t rows = kSamplerShardRows * 2 + kSamplerTileRows / 2 + 17;
  Rng r1(4242);
  const auto base = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, rows,
                                        &r1, 1, SamplerKernel::kTiled);
  ASSERT_TRUE(base.ok());
  for (const int threads : {2, 4, 8}) {
    Rng rn(4242);
    const auto out = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, rows,
                                         &rn, threads, SamplerKernel::kTiled);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(TablesEqual(*base, *out)) << "threads=" << threads;
  }
}

TEST(SamplerKernelTest, TiledTSamplerBitIdenticalAcross1248Threads) {
  const auto fx = MakeFixture(4, 24, 0.3);
  const std::size_t rows = kSamplerShardRows + kSamplerTileRows + 3;
  Rng r1(777);
  const auto base = SampleSyntheticDataT(fx.schema, fx.cdfs, fx.corr, 6.0,
                                         rows, &r1, 1, SamplerKernel::kTiled);
  ASSERT_TRUE(base.ok());
  for (const int threads : {2, 4, 8}) {
    Rng rn(777);
    const auto out =
        SampleSyntheticDataT(fx.schema, fx.cdfs, fx.corr, 6.0, rows, &rn,
                             threads, SamplerKernel::kTiled);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(TablesEqual(*base, *out)) << "threads=" << threads;
  }
}

TEST(SamplerKernelTest, LegacyKernelStillThreadCountInvariant) {
  const auto fx = MakeFixture(3, 16, 0.5);
  const std::size_t rows = kSamplerShardRows * 2 + 5;
  Rng r1(555);
  r1.set_gaussian_method(GaussianMethod::kPolar);
  const auto base = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, rows,
                                        &r1, 1, SamplerKernel::kLegacy);
  ASSERT_TRUE(base.ok());
  for (const int threads : {2, 4, 8}) {
    Rng rn(555);
    rn.set_gaussian_method(GaussianMethod::kPolar);
    const auto out = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, rows,
                                         &rn, threads, SamplerKernel::kLegacy);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(TablesEqual(*base, *out)) << "threads=" << threads;
  }
}

TEST(SamplerKernelTest, TiledMatchesLegacyPerMarginalChiSquared) {
  const std::size_t m = 4, domain = 30;
  const auto fx = MakeFixture(m, domain, 0.5);
  const std::size_t rows = 60000;

  Rng legacy_rng(9001);
  legacy_rng.set_gaussian_method(GaussianMethod::kPolar);
  const auto legacy =
      SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, rows, &legacy_rng, 1,
                          SamplerKernel::kLegacy);
  ASSERT_TRUE(legacy.ok());

  Rng tiled_rng(9002);
  const auto tiled = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, rows,
                                         &tiled_rng, 1, SamplerKernel::kTiled);
  ASSERT_TRUE(tiled.ok());

  for (std::size_t j = 0; j < m; ++j) {
    const auto ca = ColumnCounts(*legacy, j, domain);
    const auto cb = ColumnCounts(*tiled, j, domain);
    int dof = 0;
    const double stat = TwoSampleChiSquared(ca, cb, &dof);
    ASSERT_GE(dof, 1);
    // 99.9th percentile of chi-squared(k) ≈ k + 3.09*sqrt(2k) + 6.4 — a
    // loose Wilson-Hilferty-style bound; with 4 marginals a false alarm is
    // ~0.4%.
    const double kd = static_cast<double>(dof);
    EXPECT_LT(stat, kd + 3.09 * std::sqrt(2.0 * kd) + 6.4)
        << "marginal " << j << " dof " << dof;
  }
}

TEST(SamplerKernelTest, TiledReproducesTargetKendallTau) {
  const double rho = 0.6;
  const auto fx = MakeFixture(2, 50, rho);
  Rng rng(1337);
  const auto out = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, 40000,
                                       &rng, 1, SamplerKernel::kTiled);
  ASSERT_TRUE(out.ok());
  const auto tau = stats::KendallTau(out->column(0), out->column(1));
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, 2.0 / M_PI * std::asin(rho), 0.05);
}

TEST(SamplerKernelTest, TiledTSamplerMatchesLegacyStatistically) {
  const std::size_t m = 3, domain = 20;
  const auto fx = MakeFixture(m, domain, 0.4);
  const std::size_t rows = 30000;
  const double dof_t = 5.0;

  Rng legacy_rng(31);
  legacy_rng.set_gaussian_method(GaussianMethod::kPolar);
  const auto legacy =
      SampleSyntheticDataT(fx.schema, fx.cdfs, fx.corr, dof_t, rows,
                           &legacy_rng, 1, SamplerKernel::kLegacy);
  ASSERT_TRUE(legacy.ok());
  Rng tiled_rng(32);
  const auto tiled =
      SampleSyntheticDataT(fx.schema, fx.cdfs, fx.corr, dof_t, rows,
                           &tiled_rng, 1, SamplerKernel::kTiled);
  ASSERT_TRUE(tiled.ok());

  for (std::size_t j = 0; j < m; ++j) {
    const auto ca = ColumnCounts(*legacy, j, domain);
    const auto cb = ColumnCounts(*tiled, j, domain);
    int dof = 0;
    const double stat = TwoSampleChiSquared(ca, cb, &dof);
    ASSERT_GE(dof, 1);
    const double kd = static_cast<double>(dof);
    EXPECT_LT(stat, kd + 3.09 * std::sqrt(2.0 * kd) + 6.4) << "marginal " << j;
  }
  const auto tau_a = stats::KendallTau(legacy->column(0), legacy->column(1));
  const auto tau_b = stats::KendallTau(tiled->column(0), tiled->column(1));
  ASSERT_TRUE(tau_a.ok());
  ASSERT_TRUE(tau_b.ok());
  EXPECT_NEAR(*tau_a, *tau_b, 0.04);
}

TEST(SamplerKernelTest, ZeroTailMarginalNeverEmitsZeroMassValues) {
  // Marginal 1 of the fixture has two zero-mass tail bins; the fixed
  // inversion (and its table form) must never emit them.
  const auto fx = MakeFixture(3, 12, 0.3);
  Rng rng(64);
  const auto out = SampleSyntheticData(fx.schema, fx.cdfs, fx.corr, 20000,
                                       &rng, 1, SamplerKernel::kTiled);
  ASSERT_TRUE(out.ok());
  for (const double v : out->column(1)) {
    ASSERT_LE(v, 9.0);  // Domain 12, bins 10 and 11 carry zero mass.
  }
}

}  // namespace
}  // namespace dpcopula::copula
