#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "data/generator.h"
#include "stats/kendall.h"

namespace dpcopula::core {
namespace {

data::Table MakeSynthetic(std::size_t n, std::size_t m, double rho, Rng* rng,
                          std::int64_t domain = 200) {
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  auto corr = data::Equicorrelation(m, rho);
  return *data::GenerateGaussianDependent(specs, *corr, n, rng);
}

TEST(BudgetSplitTest, RatioK) {
  DpCopulaOptions opts;
  opts.epsilon = 1.0;
  opts.budget_ratio_k = 8.0;
  auto split = ComputeBudgetSplit(opts);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(split->epsilon1, 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(split->epsilon2, 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(split->epsilon1 / split->epsilon2, 8.0, 1e-9);
}

TEST(BudgetSplitTest, ValidatesParameters) {
  DpCopulaOptions opts;
  opts.epsilon = 0.0;
  EXPECT_FALSE(ComputeBudgetSplit(opts).ok());
  opts.epsilon = 1.0;
  opts.budget_ratio_k = -1.0;
  EXPECT_FALSE(ComputeBudgetSplit(opts).ok());
}

TEST(SynthesizeTest, OutputMatchesSchemaAndRowCount) {
  Rng rng(201);
  data::Table t = MakeSynthetic(2000, 3, 0.5, &rng);
  DpCopulaOptions opts;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->synthetic.schema() == t.schema());
  EXPECT_EQ(res->synthetic.num_rows(), 2000u);
  EXPECT_TRUE(res->synthetic.Validate().ok());
}

TEST(SynthesizeTest, ExplicitRowCountHonored) {
  Rng rng(203);
  data::Table t = MakeSynthetic(1000, 2, 0.5, &rng);
  DpCopulaOptions opts;
  opts.num_synthetic_rows = 123;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->synthetic.num_rows(), 123u);
}

TEST(SynthesizeTest, BudgetFullyAccounted) {
  Rng rng(205);
  data::Table t = MakeSynthetic(1000, 4, 0.3, &rng);
  DpCopulaOptions opts;
  opts.epsilon = 0.7;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->budget.spent(), 0.7, 1e-9);
  EXPECT_NEAR(res->budget.total_epsilon(), 0.7, 1e-12);
  // m margins + 1 correlation charge.
  EXPECT_EQ(res->budget.entries().size(), 5u);
}

TEST(SynthesizeTest, HighBudgetPreservesMarginsAndDependence) {
  Rng rng(207);
  data::Table t = MakeSynthetic(20000, 2, 0.6, &rng);
  DpCopulaOptions opts;
  opts.epsilon = 50.0;  // Nearly noiseless.
  opts.kendall.subsample = false;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  // Dependence preserved.
  auto tau_orig = stats::KendallTau(t.column(0), t.column(1));
  auto tau_synth =
      stats::KendallTau(res->synthetic.column(0), res->synthetic.column(1));
  EXPECT_NEAR(*tau_synth, *tau_orig, 0.05);
  // Margins preserved: compare column means.
  for (std::size_t j = 0; j < 2; ++j) {
    double mo = 0.0, ms = 0.0;
    for (double v : t.column(j)) mo += v;
    for (double v : res->synthetic.column(j)) ms += v;
    mo /= static_cast<double>(t.num_rows());
    ms /= static_cast<double>(res->synthetic.num_rows());
    EXPECT_NEAR(ms, mo, 5.0) << "column " << j;
  }
}

TEST(SynthesizeTest, MleEstimatorPath) {
  Rng rng(209);
  data::Table t = MakeSynthetic(5000, 3, 0.4, &rng);
  DpCopulaOptions opts;
  opts.estimator = CorrelationEstimator::kMle;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->mle_partitions, 0);
  EXPECT_EQ(res->kendall_rows_used, 0);
}

TEST(SynthesizeTest, KendallEstimatorPath) {
  Rng rng(211);
  data::Table t = MakeSynthetic(5000, 3, 0.4, &rng);
  DpCopulaOptions opts;
  opts.estimator = CorrelationEstimator::kKendall;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->kendall_rows_used, 0);
  EXPECT_EQ(res->mle_partitions, 0);
}

TEST(SynthesizeTest, SingleColumnSpendsAllBudgetOnMargin) {
  Rng rng(213);
  data::Table t = MakeSynthetic(1000, 1, 0.0, &rng);
  DpCopulaOptions opts;
  opts.epsilon = 1.0;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->budget.entries().size(), 1u);
  EXPECT_NEAR(res->budget.entries()[0].epsilon, 1.0, 1e-12);
  EXPECT_EQ(res->correlation.rows(), 1u);
}

TEST(SynthesizeTest, TinyTableFallsBackToIdentityCopula) {
  Rng rng(215);
  data::Table t(data::Schema({{"a", 50}, {"b", 50}}));
  ASSERT_TRUE(t.AppendRow({10, 20}).ok());
  DpCopulaOptions opts;
  opts.num_synthetic_rows = 10;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->synthetic.num_rows(), 10u);
  EXPECT_NEAR(res->correlation(0, 1), 0.0, 1e-12);
}

TEST(SynthesizeTest, InvalidOptionsRejected) {
  Rng rng(217);
  data::Table t = MakeSynthetic(100, 2, 0.2, &rng);
  DpCopulaOptions opts;
  opts.epsilon = -1.0;
  EXPECT_FALSE(Synthesize(t, opts, &rng).ok());
  data::Table empty{data::Schema()};
  DpCopulaOptions ok_opts;
  EXPECT_FALSE(Synthesize(empty, ok_opts, &rng).ok());
}

TEST(SynthesizeTest, OutOfDomainInputRejected) {
  Rng rng(219);
  data::Table t(data::Schema({{"a", 5}, {"b", 5}}));
  ASSERT_TRUE(t.AppendRow({4, 7}).ok());  // 7 outside domain.
  DpCopulaOptions opts;
  EXPECT_FALSE(Synthesize(t, opts, &rng).ok());
}

TEST(SynthesizeTest, DworkMarginalsAlsoWork) {
  Rng rng(221);
  data::Table t = MakeSynthetic(2000, 2, 0.5, &rng);
  DpCopulaOptions opts;
  opts.marginal_method = marginals::MarginalMethod::kDwork;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->synthetic.Validate().ok());
}

class SynthesizeEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(SynthesizeEpsilonSweep, AlwaysProducesValidOutput) {
  Rng rng(223);
  data::Table t = MakeSynthetic(3000, 4, 0.4, &rng);
  DpCopulaOptions opts;
  opts.epsilon = GetParam();
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok()) << "epsilon " << GetParam();
  EXPECT_TRUE(res->synthetic.Validate().ok());
  EXPECT_NEAR(res->budget.spent(), GetParam(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, SynthesizeEpsilonSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0));

TEST(SynthesizeTest, OversampleFactorScalesRows) {
  Rng rng(239);
  data::Table t = MakeSynthetic(1000, 2, 0.5, &rng);
  DpCopulaOptions opts;
  opts.oversample_factor = 4.0;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->synthetic.num_rows(), 4000u);
  // Budget unaffected — oversampling is post-processing.
  EXPECT_NEAR(res->budget.spent(), opts.epsilon, 1e-9);
  opts.oversample_factor = 0.0;
  EXPECT_FALSE(Synthesize(t, opts, &rng).ok());
}

TEST(SynthesizeTest, StudentTFamilyWithFixedDof) {
  Rng rng(241);
  data::Table t = MakeSynthetic(3000, 2, 0.6, &rng);
  DpCopulaOptions opts;
  opts.family = CopulaFamily::kStudentT;
  opts.t_dof = 4.0;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->family_used, CopulaFamily::kStudentT);
  EXPECT_DOUBLE_EQ(res->t_dof_used, 4.0);
  EXPECT_TRUE(res->synthetic.Validate().ok());
  // Fixed dof consumes no extra budget.
  EXPECT_NEAR(res->budget.spent(), opts.epsilon, 1e-9);
}

TEST(SynthesizeTest, StudentTFamilyWithPrivateDof) {
  Rng rng(243);
  data::Table t = MakeSynthetic(5000, 2, 0.6, &rng);
  DpCopulaOptions opts;
  opts.epsilon = 5.0;
  opts.family = CopulaFamily::kStudentT;
  opts.t_dof = 0.0;  // Estimate privately.
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->family_used, CopulaFamily::kStudentT);
  EXPECT_GT(res->t_dof_used, 0.0);
  EXPECT_NEAR(res->budget.spent(), opts.epsilon, 1e-9);
}

TEST(SynthesizeTest, AutoAicFamilySelectionRuns) {
  Rng rng(245);
  data::Table t = MakeSynthetic(5000, 2, 0.6, &rng);
  DpCopulaOptions opts;
  opts.epsilon = 5.0;
  opts.family = CopulaFamily::kAutoAic;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  // Either family may win; the result must be valid and fully charged.
  EXPECT_TRUE(res->synthetic.Validate().ok());
  EXPECT_NEAR(res->budget.spent(), opts.epsilon, 1e-9);
}

TEST(SynthesizeTest, EmpiricalFamilyEndToEnd) {
  Rng rng(253);
  data::Table t = MakeSynthetic(8000, 2, 0.7, &rng);
  DpCopulaOptions opts;
  opts.epsilon = 10.0;
  opts.family = CopulaFamily::kEmpirical;
  opts.empirical_grid = 8;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->family_used, CopulaFamily::kEmpirical);
  EXPECT_TRUE(res->synthetic.Validate().ok());
  EXPECT_EQ(res->synthetic.num_rows(), 8000u);
  EXPECT_NEAR(res->budget.spent(), 10.0, 1e-9);
  // Dependence preserved at the grid resolution.
  auto tau_orig = stats::KendallTau(t.column(0), t.column(1));
  auto tau_synth =
      stats::KendallTau(res->synthetic.column(0), res->synthetic.column(1));
  EXPECT_NEAR(*tau_synth, *tau_orig, 0.15);
}

TEST(SynthesizeTest, EmpiricalFamilyRejectsHighDimensions) {
  Rng rng(255);
  data::Table t = MakeSynthetic(500, 12, 0.1, &rng, 20);
  DpCopulaOptions opts;
  opts.family = CopulaFamily::kEmpirical;
  opts.empirical_grid = 16;  // 16^12 cells: must refuse.
  EXPECT_EQ(Synthesize(t, opts, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(SynthesizeTest, TinyTableFallsBackToGaussianFamily) {
  Rng rng(247);
  data::Table t = MakeSynthetic(20, 2, 0.5, &rng);
  DpCopulaOptions opts;
  opts.family = CopulaFamily::kAutoAic;
  auto res = Synthesize(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->family_used, CopulaFamily::kGaussian);
}

TEST(HybridTest, PlainDpcopulaWhenNoSmallDomains) {
  Rng rng(225);
  data::Table t = MakeSynthetic(2000, 2, 0.5, &rng);
  HybridOptions opts;
  auto res = SynthesizeHybrid(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_partitions, 1);
  EXPECT_EQ(res->synthetic.num_rows(), 2000u);
}

TEST(HybridTest, PartitionsOnBinaryAttribute) {
  Rng rng(227);
  auto t = data::GenerateUsCensus(5000, &rng);
  ASSERT_TRUE(t.ok());
  HybridOptions opts;
  opts.epsilon = 2.0;
  auto res = SynthesizeHybrid(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_partitions, 2);  // Gender is the only small domain.
  EXPECT_TRUE(res->synthetic.schema() == t->schema());
  EXPECT_TRUE(res->synthetic.Validate().ok());
  // Total rows close to the original (Laplace(1/0.2) noise on two counts).
  EXPECT_NEAR(static_cast<double>(res->synthetic.num_rows()), 5000.0, 200.0);
}

TEST(HybridTest, GenderProportionPreserved) {
  Rng rng(229);
  auto t = data::GenerateUsCensus(10000, &rng);
  ASSERT_TRUE(t.ok());
  HybridOptions opts;
  opts.epsilon = 1.0;
  auto res = SynthesizeHybrid(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  double orig_ones = 0.0, synth_ones = 0.0;
  for (double v : t->column(3)) orig_ones += v;
  for (double v : res->synthetic.column(3)) synth_ones += v;
  EXPECT_NEAR(synth_ones / static_cast<double>(res->synthetic.num_rows()),
              orig_ones / 10000.0, 0.05);
}

TEST(HybridTest, AllSmallDomainsBecomesContingencyTable) {
  Rng rng(231);
  data::Table t(data::Schema({{"a", 2}, {"b", 2}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({static_cast<double>(i % 2),
                             static_cast<double>((i / 2) % 2)})
                    .ok());
  }
  HybridOptions opts;
  opts.epsilon = 5.0;
  auto res = SynthesizeHybrid(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_partitions, 4);
  EXPECT_NEAR(static_cast<double>(res->synthetic.num_rows()), 100.0, 30.0);
}

TEST(HybridTest, ValidatesOptions) {
  Rng rng(233);
  data::Table t = MakeSynthetic(100, 2, 0.2, &rng);
  HybridOptions opts;
  opts.epsilon = 0.0;
  EXPECT_FALSE(SynthesizeHybrid(t, opts, &rng).ok());
  opts.epsilon = 1.0;
  opts.partition_count_fraction = 1.5;
  EXPECT_FALSE(SynthesizeHybrid(t, opts, &rng).ok());
}

TEST(HybridTest, TooManyPartitionsRejected) {
  Rng rng(235);
  std::vector<data::Attribute> attrs;
  for (int j = 0; j < 14; ++j) {
    attrs.push_back({"b" + std::to_string(j), 2});
  }
  data::Table t{data::Schema(attrs)};
  ASSERT_TRUE(t.AppendRow(std::vector<double>(14, 0.0)).ok());
  HybridOptions opts;
  opts.max_partitions = 4096;
  EXPECT_EQ(SynthesizeHybrid(t, opts, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(HybridTest, BudgetNeverExceedsEpsilonAcrossPartitions) {
  // Parallel composition: per-partition DPCopula runs each spend
  // eps - eps1, but the hybrid's overall guarantee is eps. Verify the
  // per-partition accountants stay within their allowance by running on a
  // dataset with highly unbalanced partitions.
  Rng rng(249);
  data::Table t(data::Schema({{"flag", 2}, {"value", 100}}));
  for (int i = 0; i < 900; ++i) {
    ASSERT_TRUE(
        t.AppendRow({0.0, static_cast<double>(i % 100)}).ok());
  }
  for (int i = 0; i < 30; ++i) {  // Tiny second partition.
    ASSERT_TRUE(
        t.AppendRow({1.0, static_cast<double>(i % 100)}).ok());
  }
  HybridOptions opts;
  opts.epsilon = 0.5;
  auto res = SynthesizeHybrid(t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->epsilon_counts + res->epsilon_copula, 0.5, 1e-12);
  EXPECT_TRUE(res->synthetic.Validate().ok());
}

TEST(HybridTest, SkipsNegativeNoisyCountPartitions) {
  // With a tiny budget the Laplace noise on empty partitions is huge; any
  // partition whose noisy count lands <= 0 must be skipped, never emitted
  // with negative rows.
  Rng rng(251);
  data::Table t(data::Schema({{"flag", 2}, {"value", 50}}));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendRow({0.0, static_cast<double>(i % 50)}).ok());
  }
  // Partition flag=1 is empty.
  int skipped_seen = 0;
  for (int rep = 0; rep < 10; ++rep) {
    HybridOptions opts;
    opts.epsilon = 0.05;
    auto res = SynthesizeHybrid(t, opts, &rng);
    ASSERT_TRUE(res.ok());
    skipped_seen += static_cast<int>(res->num_skipped_partitions);
    EXPECT_TRUE(res->synthetic.Validate().ok());
  }
  // The empty partition should be skipped in at least some repetitions
  // (noisy count <= 0 with probability 1/2).
  EXPECT_GT(skipped_seen, 0);
}

TEST(HybridTest, BrazilCensusEndToEnd) {
  Rng rng(237);
  auto t = data::GenerateBrazilCensus(4000, &rng);
  ASSERT_TRUE(t.ok());
  HybridOptions opts;
  opts.epsilon = 1.0;
  auto res = SynthesizeHybrid(*t, opts, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_partitions, 8);  // gender x disability x nativity.
  EXPECT_TRUE(res->synthetic.schema() == t->schema());
  EXPECT_TRUE(res->synthetic.Validate().ok());
}

}  // namespace
}  // namespace dpcopula::core
