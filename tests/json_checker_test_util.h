#ifndef DPCOPULA_TESTS_JSON_CHECKER_TEST_UTIL_H_
#define DPCOPULA_TESTS_JSON_CHECKER_TEST_UTIL_H_

#include <cctype>
#include <string>

namespace dpcopula::test {

// Minimal JSON validity checker shared by the obs round-trip tests: accepts
// exactly the JSON grammar (objects, arrays, strings with escapes, numbers,
// literals). Returns false on any syntax error or trailing garbage.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker c(text);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control characters must be escaped.
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace dpcopula::test

#endif  // DPCOPULA_TESTS_JSON_CHECKER_TEST_UTIL_H_
