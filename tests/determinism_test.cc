// Reproducibility: every pipeline in the library is a pure function of
// (data, options, seed). Identical seeds must give byte-identical results;
// different seeds must give different noise. This is what makes the
// experiment harness and regression debugging trustworthy.
#include <gtest/gtest.h>

#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "data/generator.h"

namespace dpcopula {
namespace {

data::Table MakeTable(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 100),
      data::MarginSpec::Zipf("b", 100, 1.0)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.5), 2000, &rng);
}

bool TablesEqual(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

TEST(DeterminismTest, GeneratorIsSeedDeterministic) {
  EXPECT_TRUE(TablesEqual(MakeTable(42), MakeTable(42)));
  EXPECT_FALSE(TablesEqual(MakeTable(42), MakeTable(43)));
}

TEST(DeterminismTest, CensusSimulatorsAreSeedDeterministic) {
  Rng r1(7), r2(7), r3(8);
  auto a = data::GenerateUsCensus(500, &r1);
  auto b = data::GenerateUsCensus(500, &r2);
  auto c = data::GenerateUsCensus(500, &r3);
  EXPECT_TRUE(TablesEqual(*a, *b));
  EXPECT_FALSE(TablesEqual(*a, *c));
}

TEST(DeterminismTest, SynthesizeIsSeedDeterministic) {
  data::Table t = MakeTable(1);
  core::DpCopulaOptions opts;
  opts.epsilon = 1.0;
  Rng r1(99), r2(99), r3(100);
  auto a = core::Synthesize(t, opts, &r1);
  auto b = core::Synthesize(t, opts, &r2);
  auto c = core::Synthesize(t, opts, &r3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(TablesEqual(a->synthetic, b->synthetic));
  EXPECT_FALSE(TablesEqual(a->synthetic, c->synthetic));
  EXPECT_LT(a->correlation.MaxAbsDiff(b->correlation), 1e-15);
  EXPECT_GT(a->correlation.MaxAbsDiff(c->correlation), 1e-9);
}

TEST(DeterminismTest, HybridIsSeedDeterministic) {
  Rng data_rng(3);
  auto t = data::GenerateUsCensus(2000, &data_rng);
  core::HybridOptions opts;
  opts.epsilon = 1.0;
  Rng r1(5), r2(5);
  auto a = core::SynthesizeHybrid(*t, opts, &r1);
  auto b = core::SynthesizeHybrid(*t, opts, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(TablesEqual(a->synthetic, b->synthetic));
}

TEST(DeterminismTest, BaselinesAreSeedDeterministic) {
  data::Table t = MakeTable(11);
  {
    Rng r1(21), r2(21);
    auto a = baselines::PsdTree::Build(t, 1.0, &r1);
    auto b = baselines::PsdTree::Build(t, 1.0, &r2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ((*a)->EstimateRangeCount({0, 0}, {99, 99}),
                     (*b)->EstimateRangeCount({0, 0}, {99, 99}));
  }
  {
    Rng r1(23), r2(23);
    auto a = baselines::PriveletMechanism::Release(t, 1.0, &r1);
    auto b = baselines::PriveletMechanism::Release(t, 1.0, &r2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ((*a)->EstimateRangeCount({5, 5}, {60, 80}),
                     (*b)->EstimateRangeCount({5, 5}, {60, 80}));
  }
}

TEST(DeterminismTest, SplitStreamsAreStable) {
  // Master/Split() pattern used by every bench: splitting must be
  // reproducible so per-run workloads can be regenerated.
  Rng m1(31), m2(31);
  for (int i = 0; i < 5; ++i) {
    Rng c1 = m1.Split();
    Rng c2 = m2.Split();
    for (int k = 0; k < 16; ++k) {
      EXPECT_EQ(c1.NextUint64(), c2.NextUint64());
    }
  }
}

}  // namespace
}  // namespace dpcopula
