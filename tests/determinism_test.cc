// Reproducibility: every pipeline in the library is a pure function of
// (data, options, seed). Identical seeds must give byte-identical results;
// different seeds must give different noise. This is what makes the
// experiment harness and regression debugging trustworthy.
#include <gtest/gtest.h>

#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/mle_estimator.h"
#include "copula/sampler.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "data/generator.h"
#include "stats/empirical_cdf.h"

namespace dpcopula {
namespace {

data::Table MakeTable(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 100),
      data::MarginSpec::Zipf("b", 100, 1.0)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.5), 2000, &rng);
}

bool TablesEqual(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_columns(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

TEST(DeterminismTest, GeneratorIsSeedDeterministic) {
  EXPECT_TRUE(TablesEqual(MakeTable(42), MakeTable(42)));
  EXPECT_FALSE(TablesEqual(MakeTable(42), MakeTable(43)));
}

TEST(DeterminismTest, CensusSimulatorsAreSeedDeterministic) {
  Rng r1(7), r2(7), r3(8);
  auto a = data::GenerateUsCensus(500, &r1);
  auto b = data::GenerateUsCensus(500, &r2);
  auto c = data::GenerateUsCensus(500, &r3);
  EXPECT_TRUE(TablesEqual(*a, *b));
  EXPECT_FALSE(TablesEqual(*a, *c));
}

TEST(DeterminismTest, SynthesizeIsSeedDeterministic) {
  data::Table t = MakeTable(1);
  core::DpCopulaOptions opts;
  opts.epsilon = 1.0;
  Rng r1(99), r2(99), r3(100);
  auto a = core::Synthesize(t, opts, &r1);
  auto b = core::Synthesize(t, opts, &r2);
  auto c = core::Synthesize(t, opts, &r3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(TablesEqual(a->synthetic, b->synthetic));
  EXPECT_FALSE(TablesEqual(a->synthetic, c->synthetic));
  EXPECT_LT(a->correlation.MaxAbsDiff(b->correlation), 1e-15);
  EXPECT_GT(a->correlation.MaxAbsDiff(c->correlation), 1e-9);
}

TEST(DeterminismTest, HybridIsSeedDeterministic) {
  Rng data_rng(3);
  auto t = data::GenerateUsCensus(2000, &data_rng);
  core::HybridOptions opts;
  opts.epsilon = 1.0;
  Rng r1(5), r2(5);
  auto a = core::SynthesizeHybrid(*t, opts, &r1);
  auto b = core::SynthesizeHybrid(*t, opts, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(TablesEqual(a->synthetic, b->synthetic));
}

TEST(DeterminismTest, BaselinesAreSeedDeterministic) {
  data::Table t = MakeTable(11);
  {
    Rng r1(21), r2(21);
    auto a = baselines::PsdTree::Build(t, 1.0, &r1);
    auto b = baselines::PsdTree::Build(t, 1.0, &r2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ((*a)->EstimateRangeCount({0, 0}, {99, 99}),
                     (*b)->EstimateRangeCount({0, 0}, {99, 99}));
  }
  {
    Rng r1(23), r2(23);
    auto a = baselines::PriveletMechanism::Release(t, 1.0, &r1);
    auto b = baselines::PriveletMechanism::Release(t, 1.0, &r2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ((*a)->EstimateRangeCount({5, 5}, {60, 80}),
                     (*b)->EstimateRangeCount({5, 5}, {60, 80}));
  }
}

// --- Thread-count invariance -------------------------------------------
//
// The parallel execution layer (common/parallel.h) must produce
// byte-identical output for every num_threads value: shards and their RNG
// streams are derived from the problem size alone, never from the
// schedule. 7 is deliberately coprime with typical shard counts.
constexpr int kThreadCounts[] = {1, 2, 7};

TEST(DeterminismTest, SamplerIsThreadCountInvariant) {
  const std::size_t m = 4;
  std::vector<data::Attribute> attrs;
  std::vector<stats::EmpiricalCdf> cdfs;
  for (std::size_t j = 0; j < m; ++j) {
    attrs.push_back({"x" + std::to_string(j), 32});
    std::vector<double> counts(32, 1.0);
    cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts));
  }
  const data::Schema schema(attrs);
  const linalg::Matrix corr = *data::Equicorrelation(m, 0.3);

  // > kSamplerShardRows rows so the parallel runs really span shards.
  const std::size_t rows = copula::kSamplerShardRows * 3 + 123;
  Rng r1(77);
  auto base = copula::SampleSyntheticData(schema, cdfs, corr, rows, &r1, 1);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    Rng rn(77);
    auto out =
        copula::SampleSyntheticData(schema, cdfs, corr, rows, &rn, threads);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(TablesEqual(*base, *out)) << "threads=" << threads;
  }
  // The t sampler shares the sharding scheme.
  Rng t1(78);
  auto t_base =
      copula::SampleSyntheticDataT(schema, cdfs, corr, 5.0, rows, &t1, 1);
  ASSERT_TRUE(t_base.ok());
  for (int threads : kThreadCounts) {
    Rng tn(78);
    auto out = copula::SampleSyntheticDataT(schema, cdfs, corr, 5.0, rows,
                                            &tn, threads);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(TablesEqual(*t_base, *out)) << "threads=" << threads;
  }
}

TEST(DeterminismTest, KendallEstimatorIsThreadCountInvariant) {
  Rng data_rng(4);
  std::vector<data::MarginSpec> specs;
  for (int j = 0; j < 5; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("g" + std::to_string(j), 64));
  }
  auto t = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(5, 0.4), 1500, &data_rng);
  ASSERT_TRUE(t.ok());
  copula::KendallEstimatorOptions opts;
  opts.num_threads = 1;
  Rng r1(55);
  auto base = copula::EstimateKendallCorrelation(*t, 0.5, &r1, opts);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    opts.num_threads = threads;
    Rng rn(55);
    auto est = copula::EstimateKendallCorrelation(*t, 0.5, &rn, opts);
    ASSERT_TRUE(est.ok());
    EXPECT_EQ(base->correlation.MaxAbsDiff(est->correlation), 0.0)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, MleEstimatorIsThreadCountInvariant) {
  data::Table t = MakeTable(9);
  copula::MleEstimatorOptions opts;
  opts.num_partitions = 16;
  opts.num_threads = 1;
  Rng r1(66);
  auto base = copula::EstimateMleCorrelation(t, 0.5, &r1, opts);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    opts.num_threads = threads;
    Rng rn(66);
    auto est = copula::EstimateMleCorrelation(t, 0.5, &rn, opts);
    ASSERT_TRUE(est.ok());
    EXPECT_EQ(base->correlation.MaxAbsDiff(est->correlation), 0.0)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, SynthesizeIsThreadCountInvariant) {
  data::Table t = MakeTable(21);
  core::DpCopulaOptions opts;
  opts.epsilon = 1.0;
  opts.num_threads = 1;
  Rng r1(111);
  auto base = core::Synthesize(t, opts, &r1);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    opts.num_threads = threads;
    Rng rn(111);
    auto res = core::Synthesize(t, opts, &rn);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(TablesEqual(base->synthetic, res->synthetic))
        << "threads=" << threads;
    EXPECT_EQ(base->correlation.MaxAbsDiff(res->correlation), 0.0)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, HybridIsThreadCountInvariant) {
  Rng data_rng(12);
  auto t = data::GenerateUsCensus(3000, &data_rng);
  ASSERT_TRUE(t.ok());
  core::HybridOptions opts;
  opts.epsilon = 1.0;
  opts.num_threads = 1;
  Rng r1(222);
  auto base = core::SynthesizeHybrid(*t, opts, &r1);
  ASSERT_TRUE(base.ok());
  for (int threads : kThreadCounts) {
    opts.num_threads = threads;
    // Nested parallelism: the inner DPCopula runs also request threads;
    // pool workers execute them inline, and the output must not change.
    opts.inner.num_threads = threads;
    Rng rn(222);
    auto res = core::SynthesizeHybrid(*t, opts, &rn);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(TablesEqual(base->synthetic, res->synthetic))
        << "threads=" << threads;
    EXPECT_EQ(base->num_skipped_partitions, res->num_skipped_partitions);
  }
}

TEST(DeterminismTest, SplitStreamsAreStable) {
  // Master/Split() pattern used by every bench: splitting must be
  // reproducible so per-run workloads can be regenerated.
  Rng m1(31), m2(31);
  for (int i = 0; i < 5; ++i) {
    Rng c1 = m1.Split();
    Rng c2 = m2.Split();
    for (int k = 0; k < 16; ++k) {
      EXPECT_EQ(c1.NextUint64(), c2.NextUint64());
    }
  }
}

}  // namespace
}  // namespace dpcopula
