// Old-vs-new equivalence and determinism suite for the batched MLE
// partition-fit kernel (the PR counterpart of sampler_kernel_test.cc and
// kendall_kernel_test.cc): bit-identical released matrices between
// MleKernel::kBatched and MleKernel::kLegacy across data shapes and
// 1/2/4/8 threads; exact scalar-vs-AVX2 agreement of the batch Phi/Phi^-1
// kernels over (0, 1) including denormal-adjacent inputs; workspace-reuse
// hygiene; and survivor averaging under injected partition faults.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "copula/gaussian_copula.h"
#include "copula/mle_estimator.h"
#include "copula/pseudo_obs.h"
#include "data/generator.h"
#include "linalg/matrix.h"
#include "stats/empirical_cdf.h"
#include "stats/normal.h"

namespace dpcopula {
namespace {

using copula::EstimateMleCorrelation;
using copula::MleEstimatorOptions;
using copula::MleKernel;
using copula::NormalScoresCorrelation;
using copula::NormalScoresCorrelationTiled;
using failpoint::Registry;

data::Table MakeCorrelated(std::size_t n, std::size_t m, double rho,
                           std::uint64_t seed, std::int64_t domain = 24) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    specs.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), domain));
  }
  auto corr = data::Equicorrelation(m, rho);
  return *data::GenerateGaussianDependent(specs, *corr, n, &rng);
}

void ExpectMatricesIdentical(const linalg::Matrix& a,
                             const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

// Bitwise equality: NaN == NaN, and +0 is distinguished from -0. This is
// the contract the dispatcher promises — flipping SIMD can never change a
// released byte.
void ExpectBitsEqual(const std::vector<double>& a,
                     const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << "i=" << i << " a=" << a[i] << " b=" << b[i];
  }
}

// ---------------------------------------------------------------------------
// Scalar-vs-AVX2 batch kernel agreement.

std::vector<double> ProbeProbabilities() {
  std::vector<double> p;
  // Dense uniform grid through both Acklam branches.
  for (int i = 1; i < 4000; ++i) p.push_back(i / 4000.0);
  // The central/tail branch boundary from both sides.
  const double p_low = 0.02425;
  for (const double d : {1e-18, 1e-12, 1e-9}) {
    p.push_back(p_low - d);
    p.push_back(p_low + d);
    p.push_back(1.0 - p_low - d);
    p.push_back(1.0 - p_low + d);
  }
  // Extreme tails, denormal-adjacent and denormal inputs.
  p.push_back(std::numeric_limits<double>::denorm_min());
  p.push_back(std::numeric_limits<double>::min());
  p.push_back(2.0 * std::numeric_limits<double>::min());
  p.push_back(1e-300);
  p.push_back(1e-100);
  p.push_back(1e-16);
  p.push_back(1.0 - 1e-16);
  p.push_back(std::nextafter(0.0, 1.0));
  p.push_back(std::nextafter(1.0, 0.0));
  // Boundary and out-of-domain values: +/-inf and NaN must agree too.
  p.push_back(0.0);
  p.push_back(1.0);
  p.push_back(-0.25);
  p.push_back(1.25);
  p.push_back(std::nan(""));
  // Random fill so lane groups mix branches in irregular patterns.
  Rng rng(424242);
  for (int i = 0; i < 5000; ++i) p.push_back(rng.NextDouble());
  return p;
}

TEST(NormalBatchKernelTest, InverseCdfScalarMatchesAvx2Bitwise) {
  const std::vector<double> p = ProbeProbabilities();
  std::vector<double> scalar(p.size()), simd(p.size()), dispatched(p.size());
  stats::internal::NormalInverseCdfBatchScalar(p.data(), scalar.data(),
                                               p.size());
  stats::internal::NormalInverseCdfBatchAvx2(p.data(), simd.data(), p.size());
  stats::NormalInverseCdfBatch(p.data(), dispatched.data(), p.size());
  // The scalar batch loop must equal the plain scalar function...
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double ref = stats::NormalInverseCdf(p[i]);
    EXPECT_EQ(std::memcmp(&scalar[i], &ref, sizeof(double)), 0) << p[i];
  }
  // ...and the AVX2 kernel (a scalar forward when not compiled) and the
  // runtime dispatcher must match it bit for bit.
  ExpectBitsEqual(scalar, simd);
  ExpectBitsEqual(scalar, dispatched);
}

TEST(NormalBatchKernelTest, CdfAndPdfScalarMatchAvx2Bitwise) {
  std::vector<double> x;
  for (int i = -800; i <= 800; ++i) x.push_back(i / 20.0);
  x.push_back(std::numeric_limits<double>::infinity());
  x.push_back(-std::numeric_limits<double>::infinity());
  x.push_back(std::nan(""));
  x.push_back(0.0);
  x.push_back(-0.0);
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) x.push_back(8.0 * (rng.NextDouble() - 0.5));

  std::vector<double> scalar(x.size()), simd(x.size());
  stats::internal::NormalCdfBatchScalar(x.data(), scalar.data(), x.size());
  stats::internal::NormalCdfBatchAvx2(x.data(), simd.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = stats::NormalCdf(x[i]);
    EXPECT_EQ(std::memcmp(&scalar[i], &ref, sizeof(double)), 0) << x[i];
  }
  ExpectBitsEqual(scalar, simd);

  stats::internal::NormalPdfBatchScalar(x.data(), scalar.data(), x.size());
  stats::internal::NormalPdfBatchAvx2(x.data(), simd.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ref = stats::NormalPdf(x[i]);
    EXPECT_EQ(std::memcmp(&scalar[i], &ref, sizeof(double)), 0) << x[i];
  }
  ExpectBitsEqual(scalar, simd);
}

TEST(NormalBatchKernelTest, RaggedLengthsAndAliasing) {
  // Tail handling: every length mod 4, and in == out aliasing.
  Rng rng(5);
  for (std::size_t n = 0; n <= 9; ++n) {
    std::vector<double> p(n), z(n);
    for (auto& v : p) v = rng.NextDouble();
    std::vector<double> in_place = p;
    stats::NormalInverseCdfBatch(p.data(), z.data(), n);
    stats::NormalInverseCdfBatch(in_place.data(), in_place.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(z[i], stats::NormalInverseCdf(p[i]));
      EXPECT_EQ(in_place[i], z[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked correlation kernel.

TEST(TiledCorrelationTest, MatchesReferenceBitwise) {
  Rng rng(303);
  // Row counts straddling the 256-row tile boundary, including non-multiple
  // tails and an n smaller than one tile.
  for (const std::size_t n : {2u, 100u, 256u, 257u, 1000u, 4096u}) {
    for (const std::size_t m : {2u, 3u, 7u}) {
      std::vector<std::vector<double>> scores(m, std::vector<double>(n));
      for (auto& col : scores) {
        for (auto& v : col) v = rng.NextGaussian();
      }
      std::vector<const double*> ptrs(m);
      for (std::size_t j = 0; j < m; ++j) ptrs[j] = scores[j].data();
      auto ref = NormalScoresCorrelation(scores);
      auto tiled = NormalScoresCorrelationTiled(ptrs.data(), m, n);
      ASSERT_TRUE(ref.ok());
      ASSERT_TRUE(tiled.ok());
      ExpectMatricesIdentical(*ref, *tiled);
    }
  }
}

TEST(TiledCorrelationTest, PackedOutputMatchesDenseBitwise) {
  // The packed-emitting variant feeds the MLE partition average; every
  // stored coefficient must carry the exact bits of the dense wrapper.
  Rng rng(304);
  for (const std::size_t n : {2u, 255u, 1000u}) {
    for (const std::size_t m : {2u, 5u, 9u}) {
      std::vector<std::vector<double>> scores(m, std::vector<double>(n));
      for (auto& col : scores) {
        for (auto& v : col) v = rng.NextGaussian();
      }
      std::vector<const double*> ptrs(m);
      for (std::size_t j = 0; j < m; ++j) ptrs[j] = scores[j].data();
      auto dense = NormalScoresCorrelationTiled(ptrs.data(), m, n);
      auto packed =
          copula::NormalScoresCorrelationTiledPacked(ptrs.data(), m, n);
      ASSERT_TRUE(dense.ok());
      ASSERT_TRUE(packed.ok());
      ExpectMatricesIdentical(*dense, packed->ToMatrix());
    }
  }
  std::vector<const double*> ptrs(2, nullptr);
  EXPECT_FALSE(
      copula::NormalScoresCorrelationTiledPacked(ptrs.data(), 0, 3).ok());
  EXPECT_FALSE(
      copula::NormalScoresCorrelationTiledPacked(ptrs.data(), 2, 1).ok());
}

TEST(TiledCorrelationTest, DegenerateColumnsAndValidation) {
  // A constant column has zero variance; the reference zeroes its
  // off-diagonal correlations and keeps the unit diagonal.
  std::vector<std::vector<double>> scores{{1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}};
  std::vector<const double*> ptrs{scores[0].data(), scores[1].data()};
  auto ref = NormalScoresCorrelation(scores);
  auto tiled = NormalScoresCorrelationTiled(ptrs.data(), 2, 3);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(tiled.ok());
  ExpectMatricesIdentical(*ref, *tiled);
  EXPECT_FALSE(NormalScoresCorrelationTiled(ptrs.data(), 0, 3).ok());
  EXPECT_FALSE(NormalScoresCorrelationTiled(ptrs.data(), 2, 1).ok());
}

TEST(TiledCorrelationTest, WorkspaceReuseAcrossShapesIsClean) {
  // The thread_local workspace serves calls of very different shapes
  // back-to-back — larger then smaller then larger — and every result must
  // still match the reference exactly.
  Rng rng(99);
  for (const std::size_t n : {700u, 8u, 1024u, 2u, 300u}) {
    const std::size_t m = 2 + n % 5;
    std::vector<std::vector<double>> scores(m, std::vector<double>(n));
    for (auto& col : scores) {
      for (auto& v : col) v = rng.NextGaussian();
    }
    std::vector<const double*> ptrs(m);
    for (std::size_t j = 0; j < m; ++j) ptrs[j] = scores[j].data();
    auto ref = NormalScoresCorrelation(scores);
    auto tiled = NormalScoresCorrelationTiled(ptrs.data(), m, n);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(tiled.ok());
    ExpectMatricesIdentical(*ref, *tiled);
  }
}

// ---------------------------------------------------------------------------
// Estimator-level old-vs-new equivalence.

class MleKernelRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MleKernelRandomTest, NoisyOutputBitIdenticalAcrossKernels) {
  const int seed = GetParam();
  // Domain regimes: heavy ties (6), the benchmark shape (64), and a wide
  // domain where most values are distinct within a partition.
  const std::int64_t domain = (seed % 3 == 0) ? 6 : (seed % 3 == 1 ? 64 : 997);
  const std::size_t n = 1500 + static_cast<std::size_t>(seed) * 211;
  const std::size_t m = 3 + static_cast<std::size_t>(seed) % 3;
  data::Table t = MakeCorrelated(n, m, 0.4, 7000 + seed, domain);

  MleEstimatorOptions legacy_opts, batched_opts;
  legacy_opts.kernel = MleKernel::kLegacy;
  batched_opts.kernel = MleKernel::kBatched;
  // Force a partition count that leaves a dropped remainder on most seeds.
  legacy_opts.num_partitions = 7 + seed % 5;
  batched_opts.num_partitions = legacy_opts.num_partitions;

  Rng r1(123), r2(123);
  auto legacy = EstimateMleCorrelation(t, 1.0, &r1, legacy_opts);
  auto batched = EstimateMleCorrelation(t, 1.0, &r2, batched_opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  ExpectMatricesIdentical(legacy->correlation, batched->correlation);
  EXPECT_EQ(legacy->num_partitions, batched->num_partitions);
  EXPECT_EQ(legacy->rows_per_partition, batched->rows_per_partition);
  EXPECT_EQ(legacy->rows_dropped, batched->rows_dropped);
  EXPECT_EQ(legacy->laplace_scale, batched->laplace_scale);
  EXPECT_EQ(legacy->repaired, batched->repaired);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MleKernelRandomTest, ::testing::Range(0, 9));

TEST(MleKernelEquivalenceTest, NonIntegralValuesMatchLegacy) {
  // EvaluateMid bins by floor while FromData counts by llround; the batched
  // run walk reproduces that skew for non-integral values. Perturb integer
  // data with fractional offsets on both sides of .5 (staying inside the
  // llround domain) and require bit-identity.
  data::Table t = MakeCorrelated(900, 3, 0.3, 51, /*domain=*/24);
  for (std::size_t j = 0; j < t.num_columns(); ++j) {
    auto& col = t.mutable_column(j);
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (i % 3 == 1 && col[i] >= 1.0) col[i] -= 0.25;
      if (i % 3 == 2 && col[i] >= 1.0) col[i] -= 0.75;
      // Exact halves: llround rounds away from zero, floor+0.5 tricks must
      // agree with it here.
      if (i % 7 == 5 && col[i] >= 2.0) col[i] -= 0.5;
    }
    // Small negative fraction: llround bins it at 0 (in domain) while
    // floor lands at -1 and EvaluateMid clamps back to 0.
    col[j] = -0.25;
  }
  MleEstimatorOptions legacy_opts, batched_opts;
  legacy_opts.kernel = MleKernel::kLegacy;
  legacy_opts.num_partitions = 5;
  batched_opts.kernel = MleKernel::kBatched;
  batched_opts.num_partitions = 5;
  Rng r1(9), r2(9);
  auto legacy = EstimateMleCorrelation(t, 1.0, &r1, legacy_opts);
  auto batched = EstimateMleCorrelation(t, 1.0, &r2, batched_opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  ExpectMatricesIdentical(legacy->correlation, batched->correlation);
}

TEST(MleKernelEquivalenceTest, HugeDomainSparsePathMatchesLegacy) {
  // A domain too large for the dense per-partition histogram pushes the
  // batched kernel onto the sorted sparse path. Fractional perturbations
  // land eval bins on empty histogram bins — including below every counted
  // bin — which the sparse cumulative lookup must reproduce exactly.
  data::Table t = MakeCorrelated(900, 3, 0.35, 77, /*domain=*/50000);
  for (std::size_t j = 0; j < t.num_columns(); ++j) {
    auto& col = t.mutable_column(j);
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (i % 4 == 1 && col[i] >= 1.0) col[i] -= 0.25;
      if (i % 4 == 3 && col[i] >= 1.0) col[i] -= 0.75;
      if (i % 7 == 5 && col[i] >= 2.0) col[i] -= 0.5;
    }
    col[j] = 0.75;  // llround bin 1, eval bin 0: below all counted mass.
  }
  MleEstimatorOptions legacy_opts, batched_opts;
  legacy_opts.kernel = MleKernel::kLegacy;
  legacy_opts.num_partitions = 5;
  batched_opts.kernel = MleKernel::kBatched;
  batched_opts.num_partitions = 5;
  Rng r1(15), r2(15);
  auto legacy = EstimateMleCorrelation(t, 1.0, &r1, legacy_opts);
  auto batched = EstimateMleCorrelation(t, 1.0, &r2, batched_opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  ExpectMatricesIdentical(legacy->correlation, batched->correlation);
}

TEST(MleKernelEquivalenceTest, ThreadCountInvariance) {
  data::Table t = MakeCorrelated(4000, 5, 0.4, 321);
  MleEstimatorOptions options;
  options.kernel = MleKernel::kBatched;
  options.num_partitions = 16;
  linalg::Matrix reference;
  for (const int threads : {1, 2, 4, 8}) {
    options.num_threads = threads;
    Rng rng(999);
    auto est = EstimateMleCorrelation(t, 1.0, &rng, options);
    ASSERT_TRUE(est.ok()) << "threads=" << threads;
    if (threads == 1) {
      reference = est->correlation;
    } else {
      ExpectMatricesIdentical(reference, est->correlation);
    }
  }
}

TEST(MleKernelEquivalenceTest, EstimatorWorkspaceReuseIsClean) {
  // Back-to-back estimates of different shapes on the same thread reuse the
  // thread_local pseudo-observation workspace; each must still match its
  // legacy twin exactly.
  struct Shape {
    std::size_t n, m;
    std::int64_t domain, partitions;
  };
  const Shape shapes[] = {{2500, 4, 64, 11},
                          {400, 3, 6, 3},
                          {3000, 5, 500, 16},
                          {150, 2, 12, 2}};
  int idx = 0;
  for (const auto& s : shapes) {
    data::Table t =
        MakeCorrelated(s.n, s.m, 0.35, 800 + idx, s.domain);
    MleEstimatorOptions legacy_opts, batched_opts;
    legacy_opts.kernel = MleKernel::kLegacy;
    legacy_opts.num_partitions = s.partitions;
    legacy_opts.num_threads = 1;
    batched_opts = legacy_opts;
    batched_opts.kernel = MleKernel::kBatched;
    Rng r1(42), r2(42);
    auto legacy = EstimateMleCorrelation(t, 0.9, &r1, legacy_opts);
    auto batched = EstimateMleCorrelation(t, 0.9, &r2, batched_opts);
    ASSERT_TRUE(legacy.ok()) << "shape " << idx;
    ASSERT_TRUE(batched.ok()) << "shape " << idx;
    ExpectMatricesIdentical(legacy->correlation, batched->correlation);
    ++idx;
  }
}

TEST(MleKernelEquivalenceTest, OutOfDomainValueFailsBothKernelsAlike) {
  data::Table t = MakeCorrelated(600, 3, 0.3, 61, /*domain=*/24);
  t.mutable_column(1)[100] = 400.0;  // Outside the declared domain.
  for (const MleKernel kernel : {MleKernel::kBatched, MleKernel::kLegacy}) {
    MleEstimatorOptions options;
    options.kernel = kernel;
    options.num_partitions = 6;
    Rng rng(5);
    auto est = EstimateMleCorrelation(t, 1.0, &rng, options);
    ASSERT_FALSE(est.ok());
    EXPECT_NE(est.status().message().find("outside domain"),
              std::string::npos);
  }
  // With enough failure headroom the poisoned partition is excluded and the
  // survivor averages must again agree bit for bit.
  MleEstimatorOptions legacy_opts, batched_opts;
  legacy_opts.kernel = MleKernel::kLegacy;
  legacy_opts.num_partitions = 6;
  legacy_opts.max_failed_partitions = 2;
  batched_opts = legacy_opts;
  batched_opts.kernel = MleKernel::kBatched;
  Rng r1(5), r2(5);
  auto legacy = EstimateMleCorrelation(t, 1.0, &r1, legacy_opts);
  auto batched = EstimateMleCorrelation(t, 1.0, &r2, batched_opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(legacy->failed_partitions, 1);
  EXPECT_EQ(batched->failed_partitions, 1);
  ExpectMatricesIdentical(legacy->correlation, batched->correlation);
}

TEST(MleKernelEquivalenceTest, BatchedRejectsNonFiniteData) {
  // Documented divergence: kBatched fails the whole estimate on non-finite
  // input instead of reaching llround UB.
  data::Table t = MakeCorrelated(300, 3, 0.3, 13);
  t.mutable_column(2)[7] = std::nan("");
  MleEstimatorOptions options;
  options.kernel = MleKernel::kBatched;
  options.num_partitions = 3;
  Rng rng(5);
  auto est = EstimateMleCorrelation(t, 1.0, &rng, options);
  ASSERT_FALSE(est.ok());
  EXPECT_NE(est.status().message().find("non-finite"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection: survivor averaging under the batched kernel.

class MleFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().DisarmAll(); }
  void TearDown() override { Registry::Global().DisarmAll(); }
};

TEST_F(MleFailpointTest, SurvivorAveragingMatchesLegacyUnderInjectedFaults) {
  data::Table t = MakeCorrelated(1200, 4, 0.4, 404);
  // Partitions 0, 3, 6, 9 fail by injection; the failpoint index is the
  // partition number, so the schedule is identical for both kernels and
  // every thread count.
  MleEstimatorOptions legacy_opts, batched_opts;
  legacy_opts.kernel = MleKernel::kLegacy;
  legacy_opts.num_partitions = 10;
  legacy_opts.max_failed_partitions = 4;
  batched_opts = legacy_opts;
  batched_opts.kernel = MleKernel::kBatched;

  ASSERT_TRUE(Registry::Global().Arm("mle.partition_fit", "1in3").ok());
  Rng r1(31), r2(31);
  auto legacy = EstimateMleCorrelation(t, 1.0, &r1, legacy_opts);
  auto batched = EstimateMleCorrelation(t, 1.0, &r2, batched_opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(legacy->failed_partitions, 4);
  EXPECT_EQ(batched->failed_partitions, 4);
  // Larger noise scale from fewer survivors, and identical releases.
  EXPECT_EQ(legacy->laplace_scale, batched->laplace_scale);
  ExpectMatricesIdentical(legacy->correlation, batched->correlation);

  // Strict mode: the same schedule with no headroom fails closed with the
  // injected-fault status under both kernels. kOnce keys on the partition
  // index (not a hit counter), so one arming covers both runs.
  Registry::Global().DisarmAll();
  ASSERT_TRUE(Registry::Global().Arm("mle.partition_fit", "once").ok());
  for (const MleKernel kernel : {MleKernel::kBatched, MleKernel::kLegacy}) {
    MleEstimatorOptions strict;
    strict.kernel = kernel;
    strict.num_partitions = 10;
    Rng rng(3);
    auto est = EstimateMleCorrelation(t, 1.0, &rng, strict);
    ASSERT_FALSE(est.ok());
    EXPECT_NE(est.status().message().find("mle.partition_fit"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// PseudoObservationsWithCdfs validation (satellite regression).

TEST(PseudoObsValidationTest, RejectsColumnShorterThanFittedCdf) {
  data::Table full = MakeCorrelated(200, 3, 0.3, 17, /*domain=*/16);
  // Fit CDFs on the full 200-row columns.
  std::vector<stats::EmpiricalCdf> cdfs;
  for (std::size_t j = 0; j < full.num_columns(); ++j) {
    auto cdf = stats::EmpiricalCdf::FromData(full.column(j), 16);
    ASSERT_TRUE(cdf.ok());
    EXPECT_EQ(cdf->fitted_rows(), 200u);
    cdfs.push_back(*cdf);
  }
  // A truncated table paired with those CDFs must be rejected, not silently
  // transformed with stale cumulative counts.
  data::Table truncated = data::Table::Zeros(full.schema(), 150);
  for (std::size_t j = 0; j < full.num_columns(); ++j) {
    auto& dst = truncated.mutable_column(j);
    for (std::size_t i = 0; i < 150; ++i) dst[i] = full.column(j)[i];
  }
  auto pseudo = copula::PseudoObservationsWithCdfs(truncated, cdfs);
  ASSERT_FALSE(pseudo.ok());
  EXPECT_NE(pseudo.status().message().find("fitted on"), std::string::npos);

  // The matching table still works...
  EXPECT_TRUE(copula::PseudoObservationsWithCdfs(full, cdfs).ok());

  // ...and CDFs built from (noisy) counts carry no row count, so any table
  // length is accepted — the DP pipeline pairs noisy marginals with data of
  // unrelated size by design.
  std::vector<stats::EmpiricalCdf> noisy;
  for (std::size_t j = 0; j < full.num_columns(); ++j) {
    std::vector<double> counts(16, 1.0);
    auto cdf = stats::EmpiricalCdf::FromCounts(counts);
    ASSERT_TRUE(cdf.ok());
    EXPECT_EQ(cdf->fitted_rows(), 0u);
    noisy.push_back(*cdf);
  }
  EXPECT_TRUE(copula::PseudoObservationsWithCdfs(truncated, noisy).ok());
}

// ---------------------------------------------------------------------------
// Matrix::AddInPlace (satellite regression).

TEST(MatrixAddInPlaceTest, MatchesOperatorPlus) {
  Rng rng(1);
  linalg::Matrix a(4, 4), b(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = rng.NextGaussian();
      b(i, j) = rng.NextGaussian();
    }
  }
  const linalg::Matrix sum = a + b;
  a.AddInPlace(b);
  ExpectMatricesIdentical(sum, a);
}

}  // namespace
}  // namespace dpcopula
