#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "dp/budget.h"
#include "dp/interactive.h"
#include "dp/mechanisms.h"

namespace dpcopula::dp {
namespace {

TEST(BudgetTest, ChargesAccumulate) {
  BudgetAccountant acct(1.0);
  EXPECT_TRUE(acct.Charge(0.25, "a").ok());
  EXPECT_TRUE(acct.Charge(0.5, "b").ok());
  EXPECT_NEAR(acct.spent(), 0.75, 1e-12);
  EXPECT_NEAR(acct.remaining(), 0.25, 1e-12);
  EXPECT_EQ(acct.entries().size(), 2u);
}

TEST(BudgetTest, OverchargeFails) {
  BudgetAccountant acct(1.0);
  EXPECT_TRUE(acct.Charge(0.9, "a").ok());
  Status s = acct.Charge(0.2, "b");
  EXPECT_EQ(s.code(), StatusCode::kPrivacyBudgetExceeded);
  // Failed charge must not be recorded.
  EXPECT_NEAR(acct.spent(), 0.9, 1e-12);
  EXPECT_EQ(acct.entries().size(), 1u);
}

TEST(BudgetTest, ManySmallChargesToleratesFloatDrift) {
  BudgetAccountant acct(1.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(acct.Charge(0.001, "tick").ok()) << i;
  }
  EXPECT_NEAR(acct.spent(), 1.0, 1e-9);
}

TEST(BudgetTest, RejectsNegativeOrNonFinite) {
  BudgetAccountant acct(1.0);
  EXPECT_FALSE(acct.Charge(-0.1, "neg").ok());
  EXPECT_FALSE(acct.Charge(std::nan(""), "nan").ok());
}

TEST(BudgetTest, ParallelChargeRecorded) {
  BudgetAccountant acct(1.0);
  EXPECT_TRUE(acct.ChargeParallel(0.4, "partitions").ok());
  EXPECT_TRUE(acct.entries()[0].parallel);
  EXPECT_NEAR(acct.spent(), 0.4, 1e-12);
}

TEST(BudgetTest, ConcurrentChargesNeverOverspend) {
  // The serving-path hammer: N threads race M charges each against one
  // shared accountant. Every quantity is a power of two, so the arithmetic
  // is exact and the admitted count is deterministic: exactly
  // total / charge = 1024 charges fit, every other attempt must be
  // rejected, and spent() lands on exactly total. Before Charge was an
  // atomic check-and-spend, two racing threads could both pass the
  // admission check and jointly push spent_ past total_ — a privacy
  // violation, not just a data race. Run under TSan in CI.
  constexpr double kTotal = 1.0;
  constexpr double kCharge = 1.0 / 1024.0;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 512;  // 4096 attempts, 1024 admitted.
  BudgetAccountant acct(kTotal, "hammer");
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acct, &admitted, &rejected] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        Status s = acct.Charge(kCharge, "hammer-tick");
        if (s.ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(s.code(), StatusCode::kPrivacyBudgetExceeded);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(admitted.load(), 1024);
  EXPECT_EQ(rejected.load(), kThreads * kChargesPerThread - 1024);
  EXPECT_DOUBLE_EQ(acct.spent(), kTotal);
  EXPECT_LE(acct.spent(), kTotal + 1e-9);
  EXPECT_EQ(acct.entries().size(), 1024u);
}

TEST(BudgetTest, ConcurrentMixedChargeKindsAndReads) {
  // Sequential and parallel charges race with remaining() readers; the
  // invariant spent() <= total + slack must hold at every interleaving.
  constexpr double kTotal = 2.0;
  constexpr double kCharge = 1.0 / 256.0;
  BudgetAccountant acct(kTotal, "hammer-mixed");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&acct, t] {
      for (int i = 0; i < 256; ++i) {
        if (t % 2 == 0) {
          (void)acct.Charge(kCharge, "seq");
        } else {
          (void)acct.ChargeParallel(kCharge, "par");
        }
        const double rem = acct.remaining();
        EXPECT_GE(rem, -1e-9);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(acct.spent(), kTotal + 1e-9);
  EXPECT_DOUBLE_EQ(acct.spent(), kTotal);  // 1024 * 1/256 = 4 > 2: exhausted.
}

TEST(BudgetTest, CopyAndMovePreserveState) {
  BudgetAccountant acct(1.0, "orig");
  ASSERT_TRUE(acct.Charge(0.25, "a", 2.0).ok());
  BudgetAccountant copy = acct;
  EXPECT_DOUBLE_EQ(copy.spent(), 0.25);
  EXPECT_EQ(copy.label(), "orig");
  ASSERT_EQ(copy.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(copy.entries()[0].sensitivity, 2.0);
  // The copy accounts independently of the original.
  ASSERT_TRUE(copy.Charge(0.5, "b").ok());
  EXPECT_DOUBLE_EQ(copy.spent(), 0.75);
  EXPECT_DOUBLE_EQ(acct.spent(), 0.25);
  BudgetAccountant moved = std::move(copy);
  EXPECT_DOUBLE_EQ(moved.spent(), 0.75);
  EXPECT_EQ(moved.entries().size(), 2u);
}

TEST(LaplaceMechanismTest, ValidatesParameters) {
  EXPECT_FALSE(LaplaceMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(-1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, -1.0).ok());
  EXPECT_TRUE(LaplaceMechanism::Create(1.0, 0.0).ok());
}

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  auto mech = LaplaceMechanism::Create(0.5, 2.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech->scale(), 4.0);
}

TEST(LaplaceMechanismTest, ZeroSensitivityIsExact) {
  Rng rng(1);
  auto mech = LaplaceMechanism::Create(1.0, 0.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech->Perturb(&rng, 42.0), 42.0);
}

TEST(LaplaceMechanismTest, NoiseHasCorrectMeanAndVariance) {
  Rng rng(3);
  auto mech = LaplaceMechanism::Create(1.0, 1.0);  // b = 1, var = 2.
  ASSERT_TRUE(mech.ok());
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double noise = mech->Perturb(&rng, 0.0);
    sum += noise;
    sum_sq += noise * noise;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 2.0, 0.1);
}

TEST(LaplaceMechanismTest, PerturbVectorPreservesLength) {
  Rng rng(5);
  auto mech = LaplaceMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(mech.ok());
  const std::vector<double> out =
      mech->PerturbVector(&rng, {1.0, 2.0, 3.0});
  EXPECT_EQ(out.size(), 3u);
}

TEST(ExponentialMechanismTest, ValidatesInput) {
  Rng rng(7);
  EXPECT_FALSE(ExponentialMechanism(&rng, {}, 1.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism(&rng, {1.0}, 0.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism(&rng, {1.0}, 1.0, 0.0).ok());
}

TEST(ExponentialMechanismTest, StronglyPrefersHighScores) {
  Rng rng(11);
  const std::vector<double> scores = {0.0, 0.0, 100.0, 0.0};
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    auto pick = ExponentialMechanism(&rng, scores, 1.0, 1.0);
    ASSERT_TRUE(pick.ok());
    if (*pick == 2) ++hits;
  }
  EXPECT_GT(hits, 990);
}

TEST(ExponentialMechanismTest, SelectionProbabilityRatio) {
  // With two candidates and score gap g, P(best)/P(other) = exp(eps*g/2).
  Rng rng(13);
  const double eps = 1.0, gap = 2.0;
  const std::vector<double> scores = {gap, 0.0};
  int best = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (*ExponentialMechanism(&rng, scores, eps, 1.0) == 0) ++best;
  }
  const double expected =
      std::exp(eps * gap / 2.0) / (1.0 + std::exp(eps * gap / 2.0));
  EXPECT_NEAR(static_cast<double>(best) / n, expected, 0.01);
}

TEST(ExponentialMechanismTest, UniformWhenScoresEqual) {
  Rng rng(17);
  const std::vector<double> scores = {5.0, 5.0, 5.0, 5.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[*ExponentialMechanism(&rng, scores, 1.0, 1.0)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(ExponentialMechanismTest, NumericallyStableForHugeScores) {
  Rng rng(19);
  // Scores whose exponentials would overflow without max-shifting.
  const std::vector<double> scores = {1e6, 1e6 - 1.0};
  auto pick = ExponentialMechanism(&rng, scores, 1.0, 1.0);
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 2u);
}

TEST(LaplaceMechanismTest, EmpiricalPrivacyLossBounded) {
  // Direct check of the DP definition: release a count that is 0 in D and
  // 1 in D' (sensitivity 1). For every output bucket, the empirical
  // probability ratio must not exceed e^epsilon (up to sampling error).
  Rng rng(29);
  const double epsilon = 1.0;
  auto mech = LaplaceMechanism::Create(epsilon, 1.0);
  ASSERT_TRUE(mech.ok());
  constexpr int kBuckets = 20;
  constexpr double kLo = -5.0, kHi = 6.0;
  constexpr int kSamples = 400000;
  std::vector<double> hist_d(kBuckets, 0.0), hist_dp(kBuckets, 0.0);
  auto bucket_of = [&](double x) {
    int b = static_cast<int>((x - kLo) / (kHi - kLo) * kBuckets);
    return std::min(kBuckets - 1, std::max(0, b));
  };
  for (int i = 0; i < kSamples; ++i) {
    hist_d[static_cast<std::size_t>(bucket_of(mech->Perturb(&rng, 0.0)))] +=
        1.0;
    hist_dp[static_cast<std::size_t>(bucket_of(mech->Perturb(&rng, 1.0)))] +=
        1.0;
  }
  const double bound = std::exp(epsilon);
  for (int b = 0; b < kBuckets; ++b) {
    // Only compare buckets with enough mass for a stable ratio estimate.
    if (hist_d[b] < 500.0 || hist_dp[b] < 500.0) continue;
    const double ratio = hist_d[b] / hist_dp[b];
    EXPECT_LT(ratio, bound * 1.15) << "bucket " << b;
    EXPECT_GT(ratio, 1.0 / (bound * 1.15)) << "bucket " << b;
  }
}

data::Table SmallTable() {
  data::Table t{data::Schema({{"a", 10}})};
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({static_cast<double>(i % 10)}).ok();
  }
  return t;
}

TEST(InteractiveEngineTest, AnswersUntilBudgetExhausted) {
  Rng rng(31);
  InteractiveEngine engine(SmallTable(), 1.0);
  EXPECT_EQ(engine.QueriesRemaining(0.1), 10u);
  for (int q = 0; q < 10; ++q) {
    auto ans = engine.AnswerRangeCount({0}, {9}, 0.1, &rng);
    ASSERT_TRUE(ans.ok()) << "query " << q;
    EXPECT_NEAR(*ans, 100.0, 120.0);  // Lap(10) noise.
  }
  EXPECT_EQ(engine.queries_answered(), 10u);
  // The 11th query must be refused — the paper's §1 motivation.
  auto refused = engine.AnswerRangeCount({0}, {9}, 0.1, &rng);
  EXPECT_EQ(refused.status().code(), StatusCode::kPrivacyBudgetExceeded);
  EXPECT_EQ(engine.QueriesRemaining(0.1), 0u);
}

TEST(InteractiveEngineTest, AccurateWithBigPerQueryBudget) {
  Rng rng(37);
  InteractiveEngine engine(SmallTable(), 100.0);
  double total_err = 0.0;
  for (int q = 0; q < 10; ++q) {
    auto ans = engine.AnswerRangeCount({2}, {5}, 5.0, &rng);
    ASSERT_TRUE(ans.ok());
    total_err += std::fabs(*ans - 40.0);
  }
  EXPECT_LT(total_err / 10.0, 1.0);
}

TEST(InteractiveEngineTest, ValidatesQueries) {
  Rng rng(41);
  InteractiveEngine engine(SmallTable(), 1.0);
  EXPECT_FALSE(engine.AnswerRangeCount({0}, {9}, 0.0, &rng).ok());
  EXPECT_FALSE(engine.AnswerRangeCount({0, 0}, {9, 9}, 0.1, &rng).ok());
  // Failed queries must not consume budget.
  EXPECT_NEAR(engine.remaining_budget(), 1.0, 1e-12);
}

TEST(GeometricMechanismTest, IntegerValuedSymmetricNoise) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = SampleTwoSidedGeometric(&rng, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(v, std::floor(v));  // Integral.
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

}  // namespace
}  // namespace dpcopula::dp
