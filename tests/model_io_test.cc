#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/model_io.h"
#include "data/generator.h"
#include "stats/kendall.h"

namespace dpcopula::core {
namespace {

DpCopulaModel FittedModel(Rng* rng, CopulaFamily family = CopulaFamily::kGaussian) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 100),
      data::MarginSpec::Zipf("b", 80, 1.0)};
  auto table = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.6), 5000, rng);
  DpCopulaOptions opts;
  opts.epsilon = 5.0;
  opts.family = family;
  if (family == CopulaFamily::kStudentT) opts.t_dof = 4.0;
  auto res = Synthesize(*table, opts, rng);
  return ModelFromSynthesis(table->schema(), *res);
}

TEST(ModelIoTest, ModelFromSynthesisCapturesFields) {
  Rng rng(601);
  DpCopulaModel model = FittedModel(&rng);
  EXPECT_EQ(model.schema.num_attributes(), 2u);
  EXPECT_EQ(model.marginal_counts.size(), 2u);
  EXPECT_EQ(model.marginal_counts[0].size(), 100u);
  EXPECT_EQ(model.correlation.rows(), 2u);
  EXPECT_EQ(model.fitted_rows, 5000u);
}

TEST(ModelIoTest, SampleFromModelProducesValidTable) {
  Rng rng(603);
  DpCopulaModel model = FittedModel(&rng);
  auto sample = SampleFromModel(model, 1234, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_rows(), 1234u);
  EXPECT_TRUE(sample->Validate().ok());
  // Default row count = fitted_rows.
  auto default_sample = SampleFromModel(model, 0, &rng);
  ASSERT_TRUE(default_sample.ok());
  EXPECT_EQ(default_sample->num_rows(), 5000u);
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  Rng rng(605);
  DpCopulaModel model = FittedModel(&rng);
  const std::string path = "/tmp/dpcopula_model_test.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->schema == model.schema);
  EXPECT_EQ(loaded->family, model.family);
  EXPECT_EQ(loaded->fitted_rows, model.fitted_rows);
  EXPECT_LT(loaded->correlation.MaxAbsDiff(model.correlation), 1e-9);
  ASSERT_EQ(loaded->marginal_counts.size(), model.marginal_counts.size());
  for (std::size_t j = 0; j < model.marginal_counts.size(); ++j) {
    for (std::size_t v = 0; v < model.marginal_counts[j].size(); ++v) {
      EXPECT_NEAR(loaded->marginal_counts[j][v],
                  model.marginal_counts[j][v], 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, StudentTRoundTrip) {
  Rng rng(607);
  DpCopulaModel model = FittedModel(&rng, CopulaFamily::kStudentT);
  ASSERT_EQ(model.family, CopulaFamily::kStudentT);
  const std::string path = "/tmp/dpcopula_model_t_test.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->family, CopulaFamily::kStudentT);
  EXPECT_DOUBLE_EQ(loaded->t_dof, 4.0);
  auto sample = SampleFromModel(*loaded, 500, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->Validate().ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, ResampledDataPreservesDependence) {
  Rng rng(609);
  DpCopulaModel model = FittedModel(&rng);
  auto sample = SampleFromModel(model, 20000, &rng);
  ASSERT_TRUE(sample.ok());
  auto tau = stats::KendallTau(sample->column(0), sample->column(1));
  ASSERT_TRUE(tau.ok());
  // Fitted at rho ~ 0.6 with high budget: tau ~ (2/pi) asin(0.6) ~ 0.41.
  EXPECT_GT(*tau, 0.25);
}

TEST(ModelIoTest, LoadRejectsCorruptFiles) {
  const std::string path = "/tmp/dpcopula_model_corrupt.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("NOT-A-MODEL\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadModel(path).ok());
  EXPECT_FALSE(LoadModel("/nonexistent/model.txt").ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SampleValidatesModel) {
  Rng rng(611);
  DpCopulaModel empty;
  EXPECT_FALSE(SampleFromModel(empty, 10, &rng).ok());
  DpCopulaModel model = FittedModel(&rng);
  model.marginal_counts.pop_back();
  EXPECT_FALSE(SampleFromModel(model, 10, &rng).ok());
}

}  // namespace
}  // namespace dpcopula::core
