#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/model_io.h"
#include "data/generator.h"
#include "stats/kendall.h"

namespace dpcopula::core {
namespace {

DpCopulaModel FittedModel(Rng* rng, CopulaFamily family = CopulaFamily::kGaussian) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 100),
      data::MarginSpec::Zipf("b", 80, 1.0)};
  auto table = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.6), 5000, rng);
  DpCopulaOptions opts;
  opts.epsilon = 5.0;
  opts.family = family;
  if (family == CopulaFamily::kStudentT) opts.t_dof = 4.0;
  auto res = Synthesize(*table, opts, rng);
  return ModelFromSynthesis(table->schema(), *res);
}

TEST(ModelIoTest, ModelFromSynthesisCapturesFields) {
  Rng rng(601);
  DpCopulaModel model = FittedModel(&rng);
  EXPECT_EQ(model.schema.num_attributes(), 2u);
  EXPECT_EQ(model.marginal_counts.size(), 2u);
  EXPECT_EQ(model.marginal_counts[0].size(), 100u);
  EXPECT_EQ(model.correlation.rows(), 2u);
  EXPECT_EQ(model.fitted_rows, 5000u);
}

TEST(ModelIoTest, SampleFromModelProducesValidTable) {
  Rng rng(603);
  DpCopulaModel model = FittedModel(&rng);
  auto sample = SampleFromModel(model, 1234, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_rows(), 1234u);
  EXPECT_TRUE(sample->Validate().ok());
  // Default row count = fitted_rows.
  auto default_sample = SampleFromModel(model, 0, &rng);
  ASSERT_TRUE(default_sample.ok());
  EXPECT_EQ(default_sample->num_rows(), 5000u);
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  Rng rng(605);
  DpCopulaModel model = FittedModel(&rng);
  const std::string path = "/tmp/dpcopula_model_test.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->schema == model.schema);
  EXPECT_EQ(loaded->family, model.family);
  EXPECT_EQ(loaded->fitted_rows, model.fitted_rows);
  EXPECT_LT(loaded->correlation.MaxAbsDiff(model.correlation), 1e-9);
  ASSERT_EQ(loaded->marginal_counts.size(), model.marginal_counts.size());
  for (std::size_t j = 0; j < model.marginal_counts.size(); ++j) {
    for (std::size_t v = 0; v < model.marginal_counts[j].size(); ++v) {
      EXPECT_NEAR(loaded->marginal_counts[j][v],
                  model.marginal_counts[j][v], 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, StudentTRoundTrip) {
  Rng rng(607);
  DpCopulaModel model = FittedModel(&rng, CopulaFamily::kStudentT);
  ASSERT_EQ(model.family, CopulaFamily::kStudentT);
  const std::string path = "/tmp/dpcopula_model_t_test.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->family, CopulaFamily::kStudentT);
  EXPECT_DOUBLE_EQ(loaded->t_dof, 4.0);
  auto sample = SampleFromModel(*loaded, 500, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->Validate().ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, ResampledDataPreservesDependence) {
  Rng rng(609);
  DpCopulaModel model = FittedModel(&rng);
  auto sample = SampleFromModel(model, 20000, &rng);
  ASSERT_TRUE(sample.ok());
  auto tau = stats::KendallTau(sample->column(0), sample->column(1));
  ASSERT_TRUE(tau.ok());
  // Fitted at rho ~ 0.6 with high budget: tau ~ (2/pi) asin(0.6) ~ 0.41.
  EXPECT_GT(*tau, 0.25);
}

TEST(ModelIoTest, LoadRejectsCorruptFiles) {
  const std::string path = "/tmp/dpcopula_model_corrupt.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("NOT-A-MODEL\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadModel(path).ok());
  EXPECT_FALSE(LoadModel("/nonexistent/model.txt").ok());
  std::remove(path.c_str());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

// Replaces the rest of the line starting at `prefix` with `value`.
std::string WithLineValue(std::string text, const std::string& prefix,
                          const std::string& value) {
  const std::size_t at = text.find(prefix);
  EXPECT_NE(at, std::string::npos) << prefix;
  const std::size_t eol = text.find('\n', at);
  text.replace(at + prefix.size(), eol - at - prefix.size(), value);
  return text;
}

// Replaces the first whitespace-delimited token on the line *after* the
// line containing `anchor` (margin/correlation blocks put values there).
std::string WithValueAfter(std::string text, const std::string& anchor,
                           const std::string& value) {
  const std::size_t at = text.find(anchor);
  EXPECT_NE(at, std::string::npos) << anchor;
  const std::size_t start = text.find('\n', at) + 1;
  const std::size_t end = text.find_first_of(" \n", start);
  text.replace(start, end - start, value);
  return text;
}

// A pristine model file round-trips bit-identically, and every mutant in a
// corpus of targeted corruptions — non-finite numbers, truncations,
// appended garbage, header damage — is rejected at load time instead of
// surfacing as NaN samples later.
TEST(ModelIoTest, CorruptionCorpusAllRejected) {
  Rng rng(613);
  DpCopulaModel model = FittedModel(&rng);
  const std::string path = "/tmp/dpcopula_model_corpus.txt";
  const std::string reserialized = "/tmp/dpcopula_model_corpus2.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  const std::string pristine = ReadFileBytes(path);

  // Bit-identical round trip: load + save again reproduces the same bytes
  // (a valid correlation passes through EnsureCorrelationMatrix unchanged).
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(SaveModel(*loaded, reserialized).ok());
  EXPECT_EQ(pristine, ReadFileBytes(reserialized));

  struct Mutant {
    const char* label;
    std::string bytes;
  };
  const std::vector<Mutant> corpus = {
      {"bad header", WithLineValue(pristine, "DPCOPULA-MODEL ", "v9")},
      {"nan t_dof", WithLineValue(pristine, "t_dof ", "nan")},
      {"inf t_dof", WithLineValue(pristine, "t_dof ", "inf")},
      {"text t_dof", WithLineValue(pristine, "t_dof ", "x")},
      {"nan margin value", WithValueAfter(pristine, "margin 0 ", "nan")},
      {"inf margin value", WithValueAfter(pristine, "margin 1 ", "inf")},
      {"text margin value", WithValueAfter(pristine, "margin 0 ", "z")},
      {"nan correlation", WithValueAfter(pristine, "correlation 2", "nan")},
      {"text correlation", WithValueAfter(pristine, "correlation 2", "q")},
      {"margin size mismatch", WithLineValue(pristine, "margin 0 ", "7")},
      {"bad family", WithLineValue(pristine, "family ", "cauchy")},
      {"trailing garbage", pristine + "leftover 1 2 3\n"},
      {"doubled write", pristine + pristine},
      {"truncated", pristine.substr(0, pristine.size() / 2)},
      {"truncated tail", pristine.substr(0, pristine.size() - 4)},
      {"empty", ""},
  };
  for (const Mutant& mutant : corpus) {
    WriteFileBytes(path, mutant.bytes);
    auto result = LoadModel(path);
    ASSERT_FALSE(result.ok()) << mutant.label;
    EXPECT_EQ(result.status().code(), StatusCode::kIOError) << mutant.label;
  }

  // Data independence: the same structural defect with different injected
  // bytes must produce the same error text — positions may leak, values
  // must not.
  WriteFileBytes(path, WithValueAfter(pristine, "margin 0 ", "nan"));
  const Status nan_status = LoadModel(path).status();
  WriteFileBytes(path, WithValueAfter(pristine, "margin 0 ", "inf"));
  const Status inf_status = LoadModel(path).status();
  EXPECT_EQ(nan_status.message(), inf_status.message());

  std::remove(path.c_str());
  std::remove(reserialized.c_str());
}

TEST(ModelIoTest, TrailingBytesAllowedOnlyWhenOptedIn) {
  Rng rng(617);
  DpCopulaModel model = FittedModel(&rng);
  const std::string path = "/tmp/dpcopula_model_trailing.txt";
  ASSERT_TRUE(SaveModel(model, path).ok());
  WriteFileBytes(path,
                 ReadFileBytes(path) + "streaming_weight 100\n"
                                       "streaming_batches 2\n");
  EXPECT_FALSE(LoadModel(path).ok());
  LoadModelOptions allow;
  allow.allow_trailing = true;
  EXPECT_TRUE(LoadModel(path, allow).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SampleValidatesModel) {
  Rng rng(611);
  DpCopulaModel empty;
  EXPECT_FALSE(SampleFromModel(empty, 10, &rng).ok());
  DpCopulaModel model = FittedModel(&rng);
  model.marginal_counts.pop_back();
  EXPECT_FALSE(SampleFromModel(model, 10, &rng).ok());
}

}  // namespace
}  // namespace dpcopula::core
