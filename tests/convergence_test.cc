// Convergence properties (paper §4.3): as the cardinality n grows, the
// noisy estimates converge to the population quantities — Lemma 4.1
// (private empirical margins), Lemma 4.2 (private Kendall's tau), and
// Theorem 4.3 (the synthesized joint distribution). These tests verify the
// trends empirically at increasing n.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/mle_estimator.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "stats/kendall.h"

namespace dpcopula {
namespace {

data::Table MakeData(std::size_t n, double rho, Rng* rng) {
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 200),
      data::MarginSpec::Gaussian("b", 200)};
  return *data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, rho), n, rng);
}

// Mean |rho_hat - rho| of the DP Kendall correlation over repetitions.
double KendallError(std::size_t n, double epsilon, int reps, Rng* rng) {
  double err = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    data::Table t = MakeData(n, 0.5, rng);
    copula::KendallEstimatorOptions opts;
    opts.subsample = false;
    auto est = copula::EstimateKendallCorrelation(t, epsilon, rng, opts);
    err += std::fabs(est->correlation(0, 1) - 0.5);
  }
  return err / reps;
}

TEST(ConvergenceTest, PrivateKendallErrorShrinksWithCardinality) {
  // Lemma 4.2: the Laplace scale is 4/((n+1) eps), so at fixed epsilon the
  // correlation error must fall as n grows.
  Rng rng(7001);
  const double err_small = KendallError(200, 0.5, 6, &rng);
  const double err_large = KendallError(8000, 0.5, 6, &rng);
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large, 0.1);
}

TEST(ConvergenceTest, PrivateMarginConvergesWithCardinality) {
  // Lemma 4.1: the noisy empirical CDF converges to the population CDF.
  // Measure max CDF deviation of the synthetic margin vs the generator's.
  Rng rng(7003);
  auto cdf_error = [&](std::size_t n) {
    data::Table t = MakeData(n, 0.0, &rng);
    core::DpCopulaOptions opts;
    opts.epsilon = 1.0;
    auto res = core::Synthesize(t, opts, &rng);
    // Compare empirical CDFs of original vs synthetic column 0.
    std::vector<double> orig(200, 0.0), synth(200, 0.0);
    for (double v : t.column(0)) orig[static_cast<std::size_t>(v)] += 1.0;
    for (double v : res->synthetic.column(0)) {
      synth[static_cast<std::size_t>(v)] += 1.0;
    }
    double co = 0.0, cs = 0.0, max_dev = 0.0;
    for (std::size_t i = 0; i < 200; ++i) {
      co += orig[i] / static_cast<double>(t.num_rows());
      cs += synth[i] / static_cast<double>(res->synthetic.num_rows());
      max_dev = std::max(max_dev, std::fabs(co - cs));
    }
    return max_dev;
  };
  double err_small = 0.0, err_large = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    err_small += cdf_error(300);
    err_large += cdf_error(20000);
  }
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large / 3.0, 0.05);
}

TEST(ConvergenceTest, SynthesizedTauConvergesToPopulationTau) {
  // Theorem 4.3 in miniature: the synthetic data's Kendall tau approaches
  // the population tau (2/pi asin rho) as n grows, at fixed epsilon.
  Rng rng(7005);
  const double target = 2.0 / M_PI * std::asin(0.5);
  auto tau_error = [&](std::size_t n) {
    double err = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      data::Table t = MakeData(n, 0.5, &rng);
      core::DpCopulaOptions opts;
      opts.epsilon = 1.0;
      opts.kendall.subsample = false;
      auto res = core::Synthesize(t, opts, &rng);
      auto tau = stats::KendallTau(res->synthetic.column(0),
                                   res->synthetic.column(1));
      err += std::fabs(*tau - target);
    }
    return err / 3.0;
  };
  const double err_small = tau_error(300);
  const double err_large = tau_error(20000);
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large, 0.08);
}

TEST(ConvergenceTest, MleErrorShrinksWithCardinality) {
  // Algorithm 2's averaged-partition noise scale is C(m,2)*2/(l*eps); more
  // data allows more partitions, so error falls with n.
  // 24 reps: with 5 the two noisy averages were close enough that a change
  // of Gaussian stream (polar -> ziggurat) could flip the comparison; at 24
  // the separation (~0.05 vs ~0.10) holds for either stream.
  Rng rng(7007);
  auto mle_error = [&](std::size_t n) {
    double err = 0.0;
    for (int rep = 0; rep < 24; ++rep) {
      data::Table t = MakeData(n, 0.5, &rng);
      auto est = copula::EstimateMleCorrelation(t, 0.5, &rng);
      err += std::fabs(est->correlation(0, 1) - 0.5);
    }
    return err / 24.0;
  };
  EXPECT_LT(mle_error(20000), mle_error(500));
}

TEST(ConvergenceTest, KendallNoiseScaleMatchesLemma) {
  // Direct check of the implemented scale: C(m,2) * 4/(n+1) / eps2.
  Rng rng(7009);
  data::Table t = MakeData(1000, 0.3, &rng);
  copula::KendallEstimatorOptions opts;
  opts.subsample = false;
  auto est = copula::EstimateKendallCorrelation(t, 0.25, &rng, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->laplace_scale, 1.0 * (4.0 / 1001.0) / 0.25, 1e-12);
  EXPECT_NEAR(est->per_pair_epsilon, 0.25, 1e-12);
}

class EpsilonMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(EpsilonMonotonicityTest, MoreBudgetNeverHurtsOnAverage) {
  // Averaged across repetitions, correlation error at eps=10 must be below
  // error at eps=0.01 (a coarse but important monotonicity sanity check).
  Rng rng(static_cast<std::uint64_t>(7100 + GetParam()));
  double err_low = 0.0, err_high = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    data::Table t = MakeData(3000, 0.5, &rng);
    copula::KendallEstimatorOptions opts;
    opts.subsample = false;
    auto low = copula::EstimateKendallCorrelation(t, 0.01, &rng, opts);
    auto high = copula::EstimateKendallCorrelation(t, 10.0, &rng, opts);
    err_low += std::fabs(low->correlation(0, 1) - 0.5);
    err_high += std::fabs(high->correlation(0, 1) - 0.5);
  }
  EXPECT_LT(err_high, err_low);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpsilonMonotonicityTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace dpcopula
