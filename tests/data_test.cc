#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "data/census.h"
#include "data/csv.h"
#include "data/generator.h"
#include "data/table.h"
#include "stats/kendall.h"

namespace dpcopula::data {
namespace {

Schema TwoColSchema() { return Schema({{"a", 10}, {"b", 5}}); }

TEST(SchemaTest, Accessors) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.attribute(0).name, "a");
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_DOUBLE_EQ(s.DomainSpace(), 50.0);
}

TEST(TableTest, AppendAndAccess) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  ASSERT_TRUE(t.AppendRow({3, 4}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
  EXPECT_FALSE(t.AppendRow({1}).ok());  // Arity mismatch.
}

TEST(TableTest, ValidateDetectsOutOfDomain) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  EXPECT_TRUE(t.Validate().ok());
  ASSERT_TRUE(t.AppendRow({11, 2}).ok());  // 11 outside [0, 10).
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, ValidateDetectsNonIntegral) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1.5, 2}).ok());
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, FilterSelectsMatchingRows) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 0}).ok());
  ASSERT_TRUE(t.AppendRow({2, 1}).ok());
  ASSERT_TRUE(t.AppendRow({3, 0}).ok());
  Table f = t.Filter(1, 0.0);
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f.at(1, 0), 3.0);
}

TEST(TableTest, ProjectKeepsSelectedColumns) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  auto p = t.Project({1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 1u);
  EXPECT_EQ(p->schema().attribute(0).name, "b");
  EXPECT_DOUBLE_EQ(p->at(0, 0), 2.0);
  EXPECT_FALSE(t.Project({5}).ok());
}

TEST(TableTest, ConcatRequiresMatchingSchema) {
  Table a(TwoColSchema()), b(TwoColSchema());
  ASSERT_TRUE(a.AppendRow({1, 1}).ok());
  ASSERT_TRUE(b.AppendRow({2, 2}).ok());
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 2u);
  Table c(Schema({{"x", 3}}));
  EXPECT_FALSE(a.Concat(c).ok());
}

TEST(TableTest, RangeCount) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 1}).ok());
  ASSERT_TRUE(t.AppendRow({5, 2}).ok());
  ASSERT_TRUE(t.AppendRow({9, 4}).ok());
  EXPECT_EQ(t.RangeCount({0, 0}, {9, 4}), 3);
  EXPECT_EQ(t.RangeCount({2, 0}, {9, 4}), 2);
  EXPECT_EQ(t.RangeCount({0, 3}, {9, 4}), 1);
  EXPECT_EQ(t.RangeCount({6, 0}, {5, 4}), 0);
}

TEST(TableTest, ZerosHasRequestedShape) {
  Table t = Table::Zeros(TwoColSchema(), 7);
  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_DOUBLE_EQ(t.at(6, 1), 0.0);
}

TEST(CsvTest, RoundTrip) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  ASSERT_TRUE(t.AppendRow({9, 4}).ok());
  const std::string path = "/tmp/dpcopula_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsvWithSchema(path, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back->at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(back->at(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST(CsvTest, InferredSchemaUsesMaxPlusOne) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({7, 3}).ok());
  const std::string path = "/tmp/dpcopula_csv_infer.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->schema().attribute(0).domain_size, 8);
  EXPECT_EQ(back->schema().attribute(1).domain_size, 4);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_EQ(ReadCsv("/nonexistent/x.csv").status().code(),
            StatusCode::kIOError);
}

TEST(MarginSpecTest, ProbabilitiesNormalized) {
  for (const auto& spec :
       {MarginSpec::Uniform("u", 100), MarginSpec::Gaussian("g", 100),
        MarginSpec::Zipf("z", 100, 1.2), MarginSpec::Bernoulli("b", 0.3)}) {
    auto p = MarginProbabilities(spec);
    ASSERT_TRUE(p.ok()) << spec.name;
    double total = 0.0;
    for (double v : *p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << spec.name;
  }
}

TEST(MarginSpecTest, BernoulliShape) {
  auto p = MarginProbabilities(MarginSpec::Bernoulli("b", 0.3));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR((*p)[0], 0.7, 1e-12);
  EXPECT_NEAR((*p)[1], 0.3, 1e-12);
}

TEST(MarginSpecTest, InvalidSpecsRejected) {
  MarginSpec bad = MarginSpec::Bernoulli("b", 1.5);
  EXPECT_FALSE(MarginProbabilities(bad).ok());
  MarginSpec neg = MarginSpec::Piecewise("p", {1.0, -2.0});
  EXPECT_FALSE(MarginProbabilities(neg).ok());
  MarginSpec empty;
  empty.domain_size = 0;
  EXPECT_FALSE(MarginProbabilities(empty).ok());
}

TEST(GeneratorTest, MarginsMatchSpecifiedDistribution) {
  Rng rng(51);
  std::vector<MarginSpec> specs = {MarginSpec::Zipf("z", 50, 1.0),
                                   MarginSpec::Uniform("u", 50)};
  auto corr = Equicorrelation(2, 0.0);
  ASSERT_TRUE(corr.ok());
  auto t = GenerateGaussianDependent(specs, *corr, 40000, &rng);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Validate().ok());
  auto probs = MarginProbabilities(specs[0]);
  ASSERT_TRUE(probs.ok());
  std::vector<double> freq(50, 0.0);
  for (double v : t->column(0)) freq[static_cast<std::size_t>(v)] += 1.0;
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_NEAR(freq[v] / 40000.0, (*probs)[v], 0.01) << "value " << v;
  }
}

TEST(GeneratorTest, GaussianDependenceInducesTargetKendall) {
  Rng rng(53);
  std::vector<MarginSpec> specs = {MarginSpec::Gaussian("a", 500),
                                   MarginSpec::Gaussian("b", 500)};
  const double rho = 0.7;
  auto corr = Equicorrelation(2, rho);
  ASSERT_TRUE(corr.ok());
  auto t = GenerateGaussianDependent(specs, *corr, 20000, &rng);
  ASSERT_TRUE(t.ok());
  auto tau = stats::KendallTau(t->column(0), t->column(1));
  ASSERT_TRUE(tau.ok());
  // For Gaussian dependence, tau = (2/pi) asin(rho).
  EXPECT_NEAR(*tau, 2.0 / M_PI * std::asin(rho), 0.03);
}

TEST(GeneratorTest, Ar1CorrelationShape) {
  auto p = Ar1Correlation(4, 0.5);
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(p(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(p(3, 0), 0.125);
}

TEST(GeneratorTest, EquicorrelationValidation) {
  EXPECT_TRUE(Equicorrelation(4, 0.5).ok());
  EXPECT_FALSE(Equicorrelation(4, -0.5).ok());  // Below -1/(m-1).
  EXPECT_FALSE(Equicorrelation(4, 1.0).ok());
}

TEST(GeneratorTest, ShapeMismatchRejected) {
  Rng rng(57);
  std::vector<MarginSpec> specs = {MarginSpec::Uniform("u", 10)};
  auto corr = Equicorrelation(2, 0.1);
  ASSERT_TRUE(corr.ok());
  EXPECT_FALSE(GenerateGaussianDependent(specs, *corr, 10, &rng).ok());
}

TEST(TableTest, FilterOnEmptyTableAndNoMatches) {
  Table t(TwoColSchema());
  EXPECT_EQ(t.Filter(0, 1.0).num_rows(), 0u);
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  EXPECT_EQ(t.Filter(0, 9.0).num_rows(), 0u);
}

TEST(TableTest, ProjectPreservesRowCount) {
  Table t(TwoColSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({static_cast<double>(i), 0}).ok());
  }
  auto p = t.Project({0, 1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_rows(), 5u);
  auto swapped = t.Project({1, 0});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->schema().attribute(0).name, "b");
  EXPECT_DOUBLE_EQ(swapped->at(3, 1), 3.0);
}

TEST(TableTest, RangeCountEmptyTable) {
  Table t(TwoColSchema());
  EXPECT_EQ(t.RangeCount({0, 0}, {9, 4}), 0);
}

TEST(TableTest, ConcatEmptyIsNoop) {
  Table a(TwoColSchema()), b(TwoColSchema());
  ASSERT_TRUE(a.AppendRow({1, 1}).ok());
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 1u);
}

TEST(GeneratorTest, SingleRowAndSingleColumn) {
  Rng rng(69);
  std::vector<MarginSpec> specs = {MarginSpec::Uniform("u", 5)};
  auto one = GenerateGaussianDependent(specs, linalg::Matrix::Identity(1), 1,
                                       &rng);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->num_rows(), 1u);
  EXPECT_TRUE(one->Validate().ok());
  auto zero = GenerateGaussianDependent(specs, linalg::Matrix::Identity(1),
                                        0, &rng);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->num_rows(), 0u);
}

TEST(GeneratorTest, ExponentialAndGammaFamilies) {
  MarginSpec expo;
  expo.name = "e";
  expo.family = MarginFamily::kExponential;
  expo.domain_size = 100;
  auto pe = MarginProbabilities(expo);
  ASSERT_TRUE(pe.ok());
  // Strictly decreasing.
  for (std::size_t i = 1; i < pe->size(); ++i) {
    EXPECT_LT((*pe)[i], (*pe)[i - 1]);
  }
  MarginSpec gamma;
  gamma.name = "g";
  gamma.family = MarginFamily::kGamma;
  gamma.domain_size = 100;
  gamma.shape = 3.0;
  auto pg = MarginProbabilities(gamma);
  ASSERT_TRUE(pg.ok());
  // Unimodal with interior mode for shape > 1.
  std::size_t mode = 0;
  for (std::size_t i = 0; i < pg->size(); ++i) {
    if ((*pg)[i] > (*pg)[mode]) mode = i;
  }
  EXPECT_GT(mode, 0u);
  EXPECT_LT(mode, 99u);
}

TEST(CensusTest, SchemasMatchPaperTable2) {
  Schema us = UsCensusSchema();
  ASSERT_EQ(us.num_attributes(), 4u);
  EXPECT_EQ(us.attribute(0).domain_size, 96);    // Age.
  EXPECT_EQ(us.attribute(1).domain_size, 1020);  // Income.
  EXPECT_EQ(us.attribute(2).domain_size, 511);   // Occupation.
  EXPECT_EQ(us.attribute(3).domain_size, 2);     // Gender.

  Schema br = BrazilCensusSchema();
  ASSERT_EQ(br.num_attributes(), 8u);
  EXPECT_EQ(br.attribute(0).domain_size, 95);
  EXPECT_EQ(br.attribute(1).domain_size, 2);
  EXPECT_EQ(br.attribute(2).domain_size, 2);
  EXPECT_EQ(br.attribute(3).domain_size, 2);
  EXPECT_EQ(br.attribute(4).domain_size, 31);
  EXPECT_EQ(br.attribute(5).domain_size, 140);
  EXPECT_EQ(br.attribute(6).domain_size, 95);
  EXPECT_EQ(br.attribute(7).domain_size, 586);
}

TEST(CensusTest, UsCensusGeneratesValidSkewedData) {
  Rng rng(61);
  auto t = GenerateUsCensus(20000, &rng);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 20000u);
  EXPECT_TRUE(t->Validate().ok());
  EXPECT_TRUE(t->schema() == UsCensusSchema());
  // Income should correlate positively with age (by construction).
  auto tau = stats::KendallTau(t->column(0), t->column(1));
  ASSERT_TRUE(tau.ok());
  EXPECT_GT(*tau, 0.1);
  // Gender split near 51%.
  double ones = 0.0;
  for (double v : t->column(3)) ones += v;
  EXPECT_NEAR(ones / 20000.0, 0.51, 0.02);
}

TEST(CensusTest, BrazilCensusGeneratesValidData) {
  Rng rng(67);
  auto t = GenerateBrazilCensus(10000, &rng);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->Validate().ok());
  EXPECT_TRUE(t->schema() == BrazilCensusSchema());
  // Disability is rare.
  double dis = 0.0;
  for (double v : t->column(2)) dis += v;
  EXPECT_LT(dis / 10000.0, 0.15);
  // Education-income dependence is positive.
  auto tau = stats::KendallTau(t->column(5), t->column(7));
  ASSERT_TRUE(tau.ok());
  EXPECT_GT(*tau, 0.1);
}

}  // namespace
}  // namespace dpcopula::data
