// Robustness sweep: random-but-valid option combinations and degenerate
// datasets must never crash, never violate output invariants, and never
// overspend the privacy budget. This is the property-style safety net for
// the whole public API surface.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dpcube.h"
#include "baselines/filter_priority.h"
#include "baselines/grids.h"
#include "baselines/php.h"
#include "baselines/privelet.h"
#include "baselines/psd.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "data/generator.h"

namespace dpcopula::core {
namespace {

data::Table RandomTable(Rng* rng) {
  const std::size_t m = 1 + rng->NextUint64Below(5);
  std::vector<data::MarginSpec> specs;
  for (std::size_t j = 0; j < m; ++j) {
    const std::int64_t domain = 2 + static_cast<std::int64_t>(
                                        rng->NextUint64Below(300));
    switch (rng->NextUint64Below(3)) {
      case 0:
        specs.push_back(
            data::MarginSpec::Uniform("u" + std::to_string(j), domain));
        break;
      case 1:
        specs.push_back(
            data::MarginSpec::Gaussian("g" + std::to_string(j), domain));
        break;
      default:
        specs.push_back(
            data::MarginSpec::Zipf("z" + std::to_string(j), domain, 1.0));
    }
  }
  const double rho = 0.6 * rng->NextDouble();
  const std::size_t n = 2 + rng->NextUint64Below(3000);
  auto corr = data::Equicorrelation(m, rho);
  return *data::GenerateGaussianDependent(specs, *corr, n, rng);
}

DpCopulaOptions RandomOptions(Rng* rng) {
  DpCopulaOptions opts;
  const double eps_choices[] = {0.001, 0.01, 0.1, 1.0, 10.0};
  opts.epsilon = eps_choices[rng->NextUint64Below(5)];
  const double k_choices[] = {0.1, 1.0, 8.0, 64.0};
  opts.budget_ratio_k = k_choices[rng->NextUint64Below(4)];
  opts.estimator = rng->NextUint64Below(2) == 0
                       ? CorrelationEstimator::kKendall
                       : CorrelationEstimator::kMle;
  switch (rng->NextUint64Below(3)) {
    case 0:
      opts.marginal_method = marginals::MarginalMethod::kEfpa;
      break;
    case 1:
      opts.marginal_method = marginals::MarginalMethod::kDwork;
      break;
    default:
      opts.marginal_method = marginals::MarginalMethod::kNoiseFirst;
  }
  switch (rng->NextUint64Below(4)) {
    case 0:
      opts.family = CopulaFamily::kGaussian;
      break;
    case 1:
      opts.family = CopulaFamily::kStudentT;
      opts.t_dof = rng->NextUint64Below(2) == 0 ? 4.0 : 0.0;
      break;
    case 2:
      opts.family = CopulaFamily::kAutoAic;
      break;
    default:
      opts.family = CopulaFamily::kEmpirical;
      opts.empirical_grid = 4 + static_cast<std::int64_t>(
                                    rng->NextUint64Below(8));
  }
  opts.kendall.subsample = rng->NextUint64Below(2) == 0;
  opts.oversample_factor = rng->NextUint64Below(2) == 0 ? 1.0 : 2.0;
  return opts;
}

class SynthesizeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SynthesizeFuzzTest, NeverCrashesAndKeepsInvariants) {
  Rng rng(static_cast<std::uint64_t>(9000 + GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    data::Table table = RandomTable(&rng);
    DpCopulaOptions opts = RandomOptions(&rng);
    auto res = Synthesize(table, opts, &rng);
    ASSERT_TRUE(res.ok()) << "m=" << table.num_columns()
                          << " n=" << table.num_rows()
                          << " err=" << res.status().ToString();
    // Invariants: domain-valid output, fully but never over-spent budget,
    // valid correlation diagonal.
    EXPECT_TRUE(res->synthetic.Validate().ok());
    EXPECT_LE(res->budget.spent(), opts.epsilon + 1e-9);
    EXPECT_GE(res->budget.spent(), 0.99 * opts.epsilon);
    for (std::size_t i = 0; i < res->correlation.rows(); ++i) {
      EXPECT_NEAR(res->correlation(i, i), 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizeFuzzTest, ::testing::Range(0, 10));

class HybridFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HybridFuzzTest, MixedDomainsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(9500 + GetParam()));
  for (int trial = 0; trial < 4; ++trial) {
    // Mix of binary and large attributes.
    std::vector<data::MarginSpec> specs;
    const std::size_t num_small = 1 + rng.NextUint64Below(3);
    const std::size_t num_large = 1 + rng.NextUint64Below(2);
    for (std::size_t j = 0; j < num_small; ++j) {
      specs.push_back(data::MarginSpec::Bernoulli(
          "b" + std::to_string(j), 0.1 + 0.8 * rng.NextDouble()));
    }
    for (std::size_t j = 0; j < num_large; ++j) {
      specs.push_back(
          data::MarginSpec::Gaussian("g" + std::to_string(j), 100));
    }
    const std::size_t m = specs.size();
    auto corr = data::Equicorrelation(m, 0.2);
    auto table = data::GenerateGaussianDependent(
        specs, *corr, 50 + rng.NextUint64Below(2000), &rng);
    ASSERT_TRUE(table.ok());

    HybridOptions opts;
    const double eps_choices[] = {0.01, 0.1, 1.0};
    opts.epsilon = eps_choices[rng.NextUint64Below(3)];
    opts.inner = RandomOptions(&rng);
    auto res = SynthesizeHybrid(*table, opts, &rng);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->synthetic.Validate().ok());
    EXPECT_TRUE(res->synthetic.schema() == table->schema());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridFuzzTest, ::testing::Range(0, 6));

class BaselineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineFuzzTest, AllBaselinesSurviveRandomInputs) {
  Rng rng(static_cast<std::uint64_t>(9800 + GetParam()));
  for (int trial = 0; trial < 4; ++trial) {
    // Small domains so the dense-histogram methods are in range.
    std::vector<data::MarginSpec> specs;
    const std::size_t m = 1 + rng.NextUint64Below(3);
    for (std::size_t j = 0; j < m; ++j) {
      specs.push_back(data::MarginSpec::Zipf(
          "z" + std::to_string(j),
          2 + static_cast<std::int64_t>(rng.NextUint64Below(40)), 1.0));
    }
    auto corr = data::Equicorrelation(m, 0.1);
    auto table = data::GenerateGaussianDependent(
        specs, *corr, 1 + rng.NextUint64Below(500), &rng);
    ASSERT_TRUE(table.ok());
    const double eps_choices[] = {0.01, 0.1, 1.0};
    const double eps = eps_choices[rng.NextUint64Below(3)];

    std::vector<std::int64_t> lo(m, 0), hi(m);
    for (std::size_t j = 0; j < m; ++j) {
      hi[j] = table->schema().attribute(j).domain_size - 1;
    }
    auto check = [&](double answer) {
      EXPECT_TRUE(std::isfinite(answer));
    };
    {
      auto e = baselines::PsdTree::Build(*table, eps, &rng);
      ASSERT_TRUE(e.ok());
      check((*e)->EstimateRangeCount(lo, hi));
    }
    {
      auto e = baselines::PriveletMechanism::Release(*table, eps, &rng);
      ASSERT_TRUE(e.ok());
      check((*e)->EstimateRangeCount(lo, hi));
    }
    {
      auto e = baselines::FilterPrioritySummary::Build(*table, eps, &rng);
      ASSERT_TRUE(e.ok());
      check((*e)->EstimateRangeCount(lo, hi));
    }
    {
      auto e = baselines::PhpMechanism::Release(*table, eps, &rng);
      ASSERT_TRUE(e.ok());
      check((*e)->EstimateRangeCount(lo, hi));
    }
    {
      auto e = baselines::DpCubeMechanism::Release(*table, eps, &rng);
      ASSERT_TRUE(e.ok());
      check((*e)->EstimateRangeCount(lo, hi));
    }
    if (m == 2) {
      auto ug = baselines::UniformGrid::Build(*table, eps, &rng);
      ASSERT_TRUE(ug.ok());
      check((*ug)->EstimateRangeCount(lo, hi));
      auto ag = baselines::AdaptiveGrid::Build(*table, eps, &rng);
      ASSERT_TRUE(ag.ok());
      check((*ag)->EstimateRangeCount(lo, hi));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace dpcopula::core
