// Integration tests for the serving daemon: an in-process Server instance
// exercised over real loopback TCP connections — deterministic seed
// replay, per-tenant budget admission with restart persistence, hot
// reload under live traffic, and bounded-queue backpressure.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/model_io.h"
#include "data/generator.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace dpcopula::serve {
namespace {

core::DpCopulaModel FitModel(std::uint64_t seed, std::size_t rows) {
  Rng rng(seed);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("a", 50), data::MarginSpec::Zipf("b", 40, 1.0)};
  auto table = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.5), rows, &rng);
  core::DpCopulaOptions opts;
  opts.epsilon = 5.0;
  auto res = core::Synthesize(*table, opts, &rng);
  return core::ModelFromSynthesis(table->schema(), *res);
}

std::string TempPath(const char* name) {
  return std::string("/tmp/dpcopula_serve_test_") + name;
}

// Minimal blocking test client speaking the line protocol over loopback.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool Send(const std::string& line) {
    const std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // One full response: a single line, or — for "OK SAMPLE ... csv" — every
  // line through the terminating "END".
  std::string ReadResponse() {
    std::string line;
    if (!ReadLine(&line)) return "";
    std::string response = line + "\n";
    if (line.rfind("OK SAMPLE", 0) == 0 &&
        line.find(" csv") != std::string::npos) {
      while (ReadLine(&line)) {
        response += line + "\n";
        if (line == "END") break;
      }
    }
    return response;
  }

  std::string Roundtrip(const std::string& request) {
    if (!Send(request)) return "";
    return ReadResponse();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::unique_ptr<Server> StartServer(const std::string& model_path,
                                    ServerOptions options = {}) {
  auto created = Server::Create(std::move(options));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<Server> server = created.MoveValueUnsafe();
  EXPECT_TRUE(server->AddModel("m", model_path).ok());
  return server;
}

TEST(ServeTest, PingStatsAndProtocolErrors) {
  const std::string path = TempPath("basic.model");
  ASSERT_TRUE(core::SaveModel(FitModel(11, 300), path).ok());
  auto server = StartServer(path);
  Client client(server->port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Roundtrip("PING"), "OK PONG\n");
  EXPECT_EQ(client.Roundtrip("NONSENSE x y"),
            "ERR 400 bad request: unknown verb\n");
  const std::string missing = client.Roundtrip("SAMPLE nosuch t 0 5 1");
  EXPECT_EQ(missing.rfind("ERR 404", 0), 0u) << missing;
  const std::string too_big = client.Roundtrip("SAMPLE m t 0 999999999 1");
  EXPECT_EQ(too_big.rfind("ERR 413", 0), 0u) << too_big;
  const std::string budget = client.Roundtrip("BUDGET acme");
  EXPECT_EQ(budget.rfind("OK BUDGET acme total=1 spent=0", 0), 0u) << budget;
  const std::string stats = client.Roundtrip("STATS");
  EXPECT_EQ(stats.rfind("OK STATS ", 0), 0u) << stats;
  EXPECT_EQ(client.Roundtrip("QUIT"), "OK BYE\n");
  const Server::Stats s = server->GetStats();
  EXPECT_EQ(s.connections_accepted, 1u);
  EXPECT_EQ(s.requests, 7u);
  std::remove(path.c_str());
}

TEST(ServeTest, DeterministicReplayBySeed) {
  const std::string path = TempPath("replay.model");
  ASSERT_TRUE(core::SaveModel(FitModel(13, 300), path).ok());
  ServerOptions options;
  options.sample_threads = 2;  // Replay must hold at any thread count.
  auto server = StartServer(path, options);
  Client a(server->port());
  Client b(server->port());
  ASSERT_TRUE(a.connected() && b.connected());
  const std::string first = a.Roundtrip("SAMPLE m t 0 64 12345");
  const std::string second = b.Roundtrip("SAMPLE m t 0 64 12345");
  EXPECT_EQ(first.rfind("OK SAMPLE 64 2 csv", 0), 0u) << first;
  // Same (model, rows, seed) → bit-identical bytes, across connections.
  EXPECT_EQ(first, second);
  const std::string other_seed = a.Roundtrip("SAMPLE m t 0 64 54321");
  EXPECT_EQ(other_seed.rfind("OK SAMPLE 64 2 csv", 0), 0u) << other_seed;
  EXPECT_NE(first, other_seed);
  std::remove(path.c_str());
}

TEST(ServeTest, BudgetExhaustionPersistsAcrossRestart) {
  const std::string model_path = TempPath("budget.model");
  const std::string ledger_path = TempPath("budget.ledger");
  std::remove(ledger_path.c_str());
  ASSERT_TRUE(core::SaveModel(FitModel(17, 300), model_path).ok());
  ServerOptions options;
  options.ledger.default_allowance = 0.5;
  options.ledger.persist_path = ledger_path;
  {
    auto server = StartServer(model_path, options);
    Client client(server->port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.Roundtrip("SAMPLE m acme 0.25 8 1")
                  .rfind("OK SAMPLE", 0),
              0u);
    EXPECT_EQ(client.Roundtrip("SAMPLE m acme 0.25 8 2")
                  .rfind("OK SAMPLE", 0),
              0u);
    const std::string rejected = client.Roundtrip("SAMPLE m acme 0.25 8 3");
    EXPECT_EQ(rejected.rfind("ERR 429", 0), 0u) << rejected;
    EXPECT_EQ(server->GetStats().budget_rejections, 1u);
    server->Shutdown();
  }
  // A fresh process (new Server over the same ledger file) must remember
  // the spend: the tenant stays exhausted, it does not get a fresh 0.5.
  {
    auto server = StartServer(model_path, options);
    Client client(server->port());
    ASSERT_TRUE(client.connected());
    const std::string budget = client.Roundtrip("BUDGET acme");
    EXPECT_EQ(budget.rfind("OK BUDGET acme total=0.5 spent=0.5", 0), 0u)
        << budget;
    const std::string rejected = client.Roundtrip("SAMPLE m acme 0.25 8 4");
    EXPECT_EQ(rejected.rfind("ERR 429", 0), 0u) << rejected;
    // Zero-epsilon replay stays free and admitted even when exhausted.
    EXPECT_EQ(client.Roundtrip("SAMPLE m acme 0 8 1").rfind("OK SAMPLE", 0),
              0u);
  }
  std::remove(model_path.c_str());
  std::remove(ledger_path.c_str());
}

TEST(ServeTest, ConcurrentClientsAllServed) {
  const std::string path = TempPath("concurrent.model");
  ASSERT_TRUE(core::SaveModel(FitModel(19, 300), path).ok());
  ServerOptions options;
  options.num_workers = 4;
  auto server = StartServer(path, options);
  constexpr int kThreads = 4;
  constexpr int kRequestsEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Client client(server->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsEach; ++r) {
        const std::string seed = std::to_string(t * 100 + r);
        const std::string reply =
            client.Roundtrip("SAMPLE m tenant" + std::to_string(t) +
                             " 0.001 16 " + seed);
        if (reply.rfind("OK SAMPLE 16 2 csv", 0) != 0 ||
            reply.find("END\n") == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  const Server::Stats stats = server->GetStats();
  EXPECT_EQ(stats.samples_ok,
            static_cast<std::uint64_t>(kThreads * kRequestsEach));
  EXPECT_EQ(stats.rows_sampled,
            static_cast<std::uint64_t>(kThreads * kRequestsEach * 16));
  std::remove(path.c_str());
}

TEST(ServeTest, HotReloadSwapsModelMidTraffic) {
  const std::string path = TempPath("reload.model");
  ASSERT_TRUE(core::SaveModel(FitModel(23, 400), path).ok());
  ServerOptions options;
  options.num_workers = 3;
  auto server = StartServer(path, options);

  // Default-rows sampling tells us which version served the request:
  // version one was fitted on 400 rows, version two on 250.
  Client probe(server->port());
  ASSERT_TRUE(probe.connected());
  EXPECT_EQ(probe.Roundtrip("SAMPLE m t 0 0 7").rfind("OK SAMPLE 400 2", 0),
            0u);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      Client client(server->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      int r = 0;
      while (!stop.load()) {
        const std::string reply = client.Roundtrip(
            "SAMPLE m t 0 32 " + std::to_string(t * 1000 + r++));
        // Every response during the swap must be a complete, well-formed
        // sample from *some* version — old or new, never torn.
        if (reply.rfind("OK SAMPLE 32 2 csv", 0) != 0 ||
            reply.find("END\n") == std::string::npos) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Atomic-rename publish of a new version while traffic is flowing.
  ASSERT_TRUE(core::SaveModel(FitModel(29, 250), path).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool swapped = false;
  while (!swapped && std::chrono::steady_clock::now() < deadline) {
    const std::string reply = probe.Roundtrip("SAMPLE m t 0 0 7");
    if (reply.rfind("OK SAMPLE 250 2", 0) == 0) {
      swapped = true;
    } else if (reply.rfind("OK SAMPLE 400 2", 0) != 0) {
      ADD_FAILURE() << "unexpected mid-reload response: " << reply;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : traffic) t.join();
  EXPECT_TRUE(swapped) << "new model version never became visible";
  EXPECT_EQ(failures.load(), 0);
  // An explicit RELOAD after the swap reports the file as current.
  EXPECT_EQ(probe.Roundtrip("RELOAD m"), "OK RELOAD unchanged\n");
  std::remove(path.c_str());
}

TEST(ServeTest, BackpressureRejectsWithFast503) {
  const std::string path = TempPath("backpressure.model");
  ASSERT_TRUE(core::SaveModel(FitModel(31, 300), path).ok());
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  auto server = StartServer(path, options);

  // Occupy the only worker: a round-trip guarantees the connection is
  // attached to it (workers hold a connection until it closes).
  Client held(server->port());
  ASSERT_TRUE(held.connected());
  EXPECT_EQ(held.Roundtrip("PING"), "OK PONG\n");

  // Fill the single queue slot.
  Client queued(server->port());
  ASSERT_TRUE(queued.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Queue full: the accept thread must answer 503 immediately — without
  // waiting for a worker — and close.
  Client rejected(server->port());
  ASSERT_TRUE(rejected.connected());
  const std::string reply = rejected.ReadResponse();
  EXPECT_EQ(reply, "ERR 503 server busy\n");

  // Releasing the worker drains the queued connection normally.
  held.Close();
  EXPECT_EQ(queued.Roundtrip("PING"), "OK PONG\n");
  EXPECT_GE(server->GetStats().connections_rejected_busy, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpcopula::serve
