#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace dpcopula {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::PrivacyBudgetExceeded("x").code(),
            StatusCode::kPrivacyBudgetExceeded);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status s = Status::IOError("disk");
  Status t = s;  // NOLINT
  EXPECT_EQ(s, t);
  EXPECT_EQ(t.message(), "disk");
}

Status Fails() { return Status::Internal("boom"); }
Status PropagatesFailure() {
  DPC_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatesFailure().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  DPC_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterEven(6);  // 6 -> 3 (odd at second step).
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, DoubleOpenNeverZeroOrOne) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDoubleOpen();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, BoundedIntsCoverRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextUint64Below(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, IntInRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt64InRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values should appear in 1000 draws.
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0, sum_cube = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.NextGaussian();
    sum += z;
    sum_sq += z * z;
    sum_cube += z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
  EXPECT_NEAR(sum_cube / n, 0.0, 0.05);  // Symmetry.
}

TEST(RngTest, PolarGaussianMoments) {
  // The legacy polar path behind the method flag must stay statistically
  // sound — golden fixtures and old-vs-new equivalence tests rely on it.
  Rng rng(19);
  rng.set_gaussian_method(GaussianMethod::kPolar);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0, sum_cube = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.NextGaussian();
    sum += z;
    sum_sq += z * z;
    sum_cube += z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
  EXPECT_NEAR(sum_cube / n, 0.0, 0.05);
}

TEST(RngTest, ZigguratTailFrequency) {
  // P(|Z| > 3.442619855899) ≈ 5.76e-4 — the ziggurat's explicit tail
  // branch. A broken tail sampler would skew this directly.
  Rng rng(29);
  const int n = 2000000;
  int tail = 0;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.NextGaussian()) > 3.442619855899) ++tail;
  }
  // 2 * (1 - Phi(R)) * n ≈ 1153 at n = 2e6.
  const double expected = std::erfc(3.442619855899 / std::sqrt(2.0)) * n;
  EXPECT_NEAR(static_cast<double>(tail), expected, 5.0 * std::sqrt(expected));
}

TEST(RngTest, FillGaussianMatchesSequentialDraws) {
  Rng a(31), b(31);
  double block[257];
  a.FillGaussian(block, 257);
  for (int i = 0; i < 257; ++i) {
    ASSERT_DOUBLE_EQ(block[i], b.NextGaussian()) << "i=" << i;
  }
}

TEST(RngTest, SplitInheritsGaussianMethod) {
  Rng parent(37);
  parent.set_gaussian_method(GaussianMethod::kPolar);
  Rng child = parent.Split();
  EXPECT_EQ(child.gaussian_method(), GaussianMethod::kPolar);
  // A legacy-flagged parent and an identically-seeded default parent must
  // produce identical child *uniform* streams (the flag only affects
  // Gaussians).
  Rng parent2(37);
  Rng child2 = parent2.Split();
  EXPECT_EQ(child.NextUint64(), child2.NextUint64());
}

TEST(RngTest, SplitDecorrelates) {
  Rng parent(23);
  Rng child = parent.Split();
  // Child stream should not reproduce the parent stream.
  Rng parent_copy(23);
  parent_copy.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(ParallelTest, ResolveNumThreads) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(-3), 1);
  EXPECT_EQ(ResolveNumThreads(5), 5);
  EXPECT_EQ(ResolveNumThreads(0), HardwareThreads());
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ParallelTest, MakeShardsCoversRangeExactlyOnce) {
  for (std::size_t n : {0UL, 1UL, 7UL, 100UL, 1000UL}) {
    for (std::size_t grain : {1UL, 3UL, 64UL, 5000UL}) {
      const auto shards = MakeShards(0, n, grain);
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (const auto& s : shards) {
        EXPECT_EQ(s.begin, expect_begin);
        EXPECT_LT(s.begin, s.end);
        EXPECT_LE(s.end - s.begin, grain);
        covered += s.end - s.begin;
        expect_begin = s.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    const std::size_t n = 10007;
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    ParallelFor(
        0, n, 17,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1);
          }
        },
        threads);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelTest, ParallelForShardedIsThreadCountInvariant) {
  // Per-shard RNG streams: filling a buffer must give identical bytes for
  // any thread count, and must advance the parent identically.
  auto fill = [](int threads, std::vector<std::uint64_t>* out,
                 std::uint64_t* parent_after) {
    Rng rng(321);
    out->assign(1000, 0);
    ParallelForSharded(
        0, 1000, 64, &rng,
        [&](std::size_t begin, std::size_t end, Rng* shard_rng) {
          for (std::size_t i = begin; i < end; ++i) {
            (*out)[i] = shard_rng->NextUint64();
          }
        },
        threads);
    *parent_after = rng.NextUint64();
  };
  std::vector<std::uint64_t> base, other;
  std::uint64_t base_parent = 0, other_parent = 0;
  fill(1, &base, &base_parent);
  for (int threads : {2, 3, 16}) {
    fill(threads, &other, &other_parent);
    EXPECT_EQ(base, other) << "threads=" << threads;
    EXPECT_EQ(base_parent, other_parent) << "threads=" << threads;
  }
}

TEST(ParallelTest, NestedParallelForRunsInline) {
  // A ParallelFor inside a pool task must not deadlock (workers never
  // block on queued subtasks — nested loops run inline).
  std::atomic<std::size_t> total{0};
  ParallelFor(
      0, 8, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          ParallelFor(
              0, 100, 10,
              [&](std::size_t b, std::size_t e) {
                total.fetch_add(e - b);
              },
              8);
        }
      },
      8);
  EXPECT_EQ(total.load(), 800u);
}

TEST(ParallelTest, EmptyAndSingleRangesWork) {
  int calls = 0;
  ParallelFor(
      5, 5, 4, [&](std::size_t, std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 0);
  Rng rng(1);
  ParallelForSharded(
      0, 1, 4, &rng, [&](std::size_t, std::size_t, Rng*) { ++calls; }, 8);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dpcopula
