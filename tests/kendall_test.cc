#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "stats/kendall.h"

namespace dpcopula::stats {
namespace {

TEST(InversionsTest, SortedHasNone) {
  EXPECT_EQ(CountInversions({1, 2, 3, 4, 5}), 0u);
}

TEST(InversionsTest, ReverseSortedHasAll) {
  EXPECT_EQ(CountInversions({5, 4, 3, 2, 1}), 10u);
}

TEST(InversionsTest, KnownCase) {
  // (2,1), (3,1), (8,1), (8,7) -> 4 inversions.
  EXPECT_EQ(CountInversions({2, 3, 8, 1, 7}), 4u);
}

TEST(KendallTest, PerfectConcordance) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(*KendallTau(x, x), 1.0);
}

TEST(KendallTest, PerfectDiscordance) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y(x.rbegin(), x.rend());
  EXPECT_DOUBLE_EQ(*KendallTau(x, y), -1.0);
}

TEST(KendallTest, InvariantUnderMonotoneTransform) {
  Rng rng(1);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = 0.6 * x[i] + 0.8 * rng.NextGaussian();
  }
  std::vector<double> x_exp(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x_exp[i] = std::exp(x[i]);
  EXPECT_NEAR(*KendallTau(x, y), *KendallTau(x_exp, y), 1e-12);
}

TEST(KendallTest, KnownSmallExample) {
  // x: 1 2 3 4; y: 1 3 2 4 -> 5 concordant, 1 discordant, tau = 4/6.
  EXPECT_NEAR(*KendallTau({1, 2, 3, 4}, {1, 3, 2, 4}), 4.0 / 6.0, 1e-12);
}

TEST(KendallTest, TiesCountAsNeither) {
  // x: 1 1 2; y: 1 2 3. Pairs: (1,2) tied on x; (1,3),(2,3) concordant.
  // tau-a = 2 / 3.
  EXPECT_NEAR(*KendallTau({1, 1, 2}, {1, 2, 3}), 2.0 / 3.0, 1e-12);
}

TEST(KendallTest, ErrorsOnBadInput) {
  EXPECT_FALSE(KendallTau({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(KendallTau({1}, {1}).ok());
}

TEST(KendallTest, RejectsNonFiniteInput) {
  // A NaN in either column would make the (x, y) sort comparator a
  // non-strict weak order — UB in std::sort — so both paths must fail
  // closed, with a data-independent message.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> clean = {1, 2, 3, 4};
  for (const double bad : {nan, inf, -inf}) {
    const std::vector<double> poisoned = {1, bad, 3, 4};
    for (auto* fn : {&KendallTau, &KendallTauBruteForce}) {
      auto xy = (*fn)(poisoned, clean);
      auto yx = (*fn)(clean, poisoned);
      ASSERT_FALSE(xy.ok());
      ASSERT_FALSE(yx.ok());
      EXPECT_EQ(xy.status().code(), StatusCode::kInvalidArgument);
      // Same message wherever the bad value sits: no positions, no values.
      EXPECT_EQ(xy.status().message(), yx.status().message());
      EXPECT_EQ(xy.status().message().find("nan"), std::string::npos);
    }
  }
}

TEST(KendallTest, GaussianRelationTauToRho) {
  // For bivariate normal: tau = (2/pi) arcsin(rho). Verify at rho = 0.5.
  Rng rng(2);
  const double rho = 0.5;
  const std::size_t n = 20000;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z1 = rng.NextGaussian();
    const double z2 = rng.NextGaussian();
    x[i] = z1;
    y[i] = rho * z1 + std::sqrt(1 - rho * rho) * z2;
  }
  const double expected = 2.0 / M_PI * std::asin(rho);
  EXPECT_NEAR(*KendallTau(x, y), expected, 0.02);
}

class KendallEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KendallEquivalenceTest, FastMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const std::size_t n = 50 + static_cast<std::size_t>(GetParam()) * 17;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Small discrete domain forces plenty of ties in both coordinates.
    x[i] = static_cast<double>(rng.NextUint64Below(8));
    y[i] = static_cast<double>(rng.NextUint64Below(8)) + 0.25 * x[i];
  }
  EXPECT_NEAR(*KendallTau(x, y), *KendallTauBruteForce(x, y), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomData, KendallEquivalenceTest,
                         ::testing::Range(0, 12));

class KendallSensitivityTest : public ::testing::TestWithParam<int> {};

TEST_P(KendallSensitivityTest, AddingOneTupleBoundedByLemma41) {
  // Lemma 4.1: |tau(D) - tau(D')| <= 4 / (n + 1) when D' = D + one tuple.
  Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const std::size_t n = 60;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(rng.NextUint64Below(1000));
    y[i] = static_cast<double>(rng.NextUint64Below(1000));
  }
  const double tau_base = *KendallTau(x, y);
  const double bound = 4.0 / (static_cast<double>(n) + 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x2 = x, y2 = y;
    // Adversarial-ish extremes as well as random insertions.
    x2.push_back(static_cast<double>(rng.NextUint64Below(1000)));
    y2.push_back(trial % 3 == 0   ? 0.0
                 : trial % 3 == 1 ? 999.0
                                  : static_cast<double>(
                                        rng.NextUint64Below(1000)));
    const double tau_neighbor = *KendallTau(x2, y2);
    EXPECT_LE(std::fabs(tau_neighbor - tau_base), bound + 1e-12)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallSensitivityTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace dpcopula::stats
