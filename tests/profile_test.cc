// Stage profiler: fixed stage table, RAII scope recording, the stage-sum
// accounting guarantee (single-threaded stage totals track the wall clock
// of the instrumented region), peak-RSS sampling, and graceful hardware
// counter fallback in containers that deny perf_event_open.
//
// Recording assertions are guarded on DPCOPULA_OBS_ENABLED so the suite
// also exercises the no-op stubs under -DDPCOPULA_OBS=OFF.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "copula/sampler.h"
#include "data/generator.h"
#include "data/schema.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "stats/empirical_cdf.h"

namespace dpcopula::obs {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObsConfig config;
    config.profile = true;
    SetObsConfig(config);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override { SetObsConfig(ObsConfig{}); }
};

TEST_F(ProfileTest, StageNamesAreStableAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < kNumProfileStages; ++i) {
    const std::string name = StageName(static_cast<Stage>(i));
    EXPECT_FALSE(name.empty());
    // snake_case, safe for metric keys.
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_') << name;
    }
    EXPECT_TRUE(seen.insert(name).second) << "duplicate stage name " << name;
  }
  EXPECT_STREQ(StageName(Stage::kCsvRead), "csv_read");
  EXPECT_STREQ(StageName(Stage::kTauPairs), "tau_pairs");
  EXPECT_STREQ(StageName(Stage::kInverseCdf), "inverse_cdf");
}

TEST_F(ProfileTest, StageScopeRecordsIntoRegistryHistogram) {
  {
    StageScope scope(Stage::kTauPairs);
    // Spin a little so the recorded duration is visibly non-zero.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
#if DPCOPULA_OBS_ENABLED
  Histogram* direct = StageProfiler::Global().histogram(Stage::kTauPairs);
  Histogram* via_registry =
      MetricsRegistry::Global().GetHistogram("profile.tau_pairs_seconds");
  EXPECT_EQ(direct, via_registry);  // Same object, not a copy.
  EXPECT_EQ(direct->Count(), 1);
  EXPECT_GE(direct->Sum(), 0.0);
#else
  // The registry hands out real (no-op) histogram objects either way.
  EXPECT_EQ(StageProfiler::Global().histogram(Stage::kTauPairs)->Count(), 0);
#endif
}

TEST_F(ProfileTest, StageScopeIsInertWhenProfilingDisabled) {
  ObsConfig config;
  config.metrics = true;  // Metrics on, profiling off.
  SetObsConfig(config);
  { StageScope scope(Stage::kCholesky); }
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(StageProfiler::Global().histogram(Stage::kCholesky)->Count(), 0);
#endif
}

TEST_F(ProfileTest, StageProfilerResetZeroesAllStages) {
  { StageScope scope(Stage::kPsdRepair); }
  StageProfiler::Global().Reset();
#if DPCOPULA_OBS_ENABLED
  EXPECT_EQ(StageProfiler::Global().histogram(Stage::kPsdRepair)->Count(), 0);
#endif
}

#if DPCOPULA_OBS_ENABLED
// The accounting guarantee behind the per-stage report tables: stages are
// leaf-level and disjoint, so on one thread their totals cover the wall
// time of the instrumented region, minus only unscoped glue (shard setup,
// table allocation). Run a sampling workload large enough that glue is
// noise and check both directions of the bound.
TEST_F(ProfileTest, SingleThreadStageSumsTrackWallClock) {
  constexpr std::size_t kRows = 200000;
  constexpr std::size_t kDims = 8;
  data::Schema schema = [] {
    std::vector<data::Attribute> attrs;
    for (std::size_t j = 0; j < kDims; ++j) {
      attrs.push_back({"x" + std::to_string(j), 64});
    }
    return data::Schema(attrs);
  }();
  std::vector<stats::EmpiricalCdf> cdfs;
  for (std::size_t j = 0; j < kDims; ++j) {
    std::vector<double> counts(64);
    for (std::size_t v = 0; v < counts.size(); ++v) {
      counts[v] = static_cast<double>(v + 1);
    }
    cdfs.push_back(*stats::EmpiricalCdf::FromCounts(counts));
  }
  linalg::Matrix corr = *data::Equicorrelation(kDims, 0.4);

  StageProfiler::Global().Reset();
  Rng rng(1234);
  const auto wall_start = std::chrono::steady_clock::now();
  auto table = copula::SampleSyntheticData(schema, cdfs, corr, kRows, &rng,
                                           /*num_threads=*/1);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  ASSERT_TRUE(table.ok()) << table.status().message();

  const Stage kSamplerStages[] = {Stage::kCholesky, Stage::kGaussianFill,
                                  Stage::kCholeskyApply, Stage::kInverseCdf};
  double stage_sum = 0.0;
  for (Stage s : kSamplerStages) {
    stage_sum += StageProfiler::Global().histogram(s)->Sum();
  }
  // Tile-grain stages fire once per tile; the fill and apply tilings match.
  EXPECT_EQ(StageProfiler::Global().histogram(Stage::kGaussianFill)->Count(),
            StageProfiler::Global().histogram(Stage::kCholeskyApply)->Count());
  EXPECT_EQ(StageProfiler::Global().histogram(Stage::kCholesky)->Count(), 1);
  // Disjoint scopes can never exceed the wall clock that contains them
  // (2% slack for clock-read jitter at tile granularity)...
  EXPECT_LE(stage_sum, wall * 1.02)
      << "stage scopes overlap or leak: sum=" << stage_sum
      << "s wall=" << wall << "s";
  // ...and at this workload size the unscoped glue is bounded, so they
  // must also cover most of it. 80% keeps the test robust to allocator
  // hiccups under sanitizers while still catching a dropped stage scope.
  EXPECT_GE(stage_sum, wall * 0.80)
      << "stage coverage too low: sum=" << stage_sum << "s wall=" << wall
      << "s";
}
#endif  // DPCOPULA_OBS_ENABLED

TEST_F(ProfileTest, PeakRssIsPositiveOnLinux) {
  const std::int64_t rss = PeakRssBytes();
#if defined(__linux__)
  EXPECT_GT(rss, 0);
  // A process running this test suite holds at least a megabyte.
  EXPECT_GE(rss, std::int64_t{1} << 20);
#else
  EXPECT_GE(rss, 0);
#endif
}

TEST_F(ProfileTest, HwCountersDegradeGracefully) {
  // Probe is cached and consistent with what a fresh group reports.
  const bool probed = HwCounterGroup::Probe();
  HwCounterGroup group;
  EXPECT_EQ(group.available(), probed);
  group.Start();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i) * 1.5;
  const HwCounterSample sample = group.Stop();
  if (group.available()) {
    EXPECT_TRUE(sample.available);
    EXPECT_GT(sample.cycles, 0);
    EXPECT_GT(sample.instructions, 0);
  } else {
    // The container denies perf_event_open: everything must be a harmless
    // zeroed no-op, never an error.
    EXPECT_FALSE(sample.available);
    EXPECT_EQ(sample.cycles, 0);
    EXPECT_EQ(sample.instructions, 0);
    EXPECT_EQ(sample.cache_misses, 0);
  }
  // Stop() twice stays harmless.
  (void)group.Stop();
}

TEST_F(ProfileTest, ProfileSessionPublishesGauges) {
  { ProfileSession session; }
#if DPCOPULA_OBS_ENABLED
  Gauge* rss = MetricsRegistry::Global().GetGauge("profile.peak_rss_bytes");
  Gauge* hw = MetricsRegistry::Global().GetGauge("profile.hw_available");
#if defined(__linux__)
  EXPECT_GT(rss->Value(), 0.0);
#else
  EXPECT_GE(rss->Value(), 0.0);
#endif
  EXPECT_TRUE(hw->Value() == 0.0 || hw->Value() == 1.0);
  if (hw->Value() == 0.0) {
    EXPECT_EQ(
        MetricsRegistry::Global().GetGauge("profile.hw_cycles")->Value(), 0.0);
  }
#endif
}

TEST_F(ProfileTest, ProfileSessionIsInertWhenProfilingDisabled) {
  SetObsConfig(ObsConfig{});
  MetricsRegistry::Global().ResetAll();
  { ProfileSession session; }
  // No gauges published; with obs fully off Value() is 0 regardless.
  EXPECT_EQ(MetricsRegistry::Global()
                .GetGauge("profile.peak_rss_bytes")
                ->Value(),
            0.0);
}

}  // namespace
}  // namespace dpcopula::obs
