// Census release: the paper's motivating scenario. A statistical agency
// holds microdata with a mix of binary and large-domain attributes and
// wants to publish a synthetic copy under a strict privacy budget.
//
//   $ ./build/examples/census_release [epsilon] [output.csv]
//
// Uses DPCopula-Hybrid (Algorithm 6): binary attributes partition the data,
// each partition gets its own copula synthesis, and the result is written
// to CSV for downstream use.
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/hybrid.h"
#include "data/census.h"
#include "data/csv.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const char* out_path =
      argc > 2 ? argv[2] : "/tmp/dpcopula_census_release.csv";

  Rng rng(2014);
  auto census = data::GenerateUsCensus(50000, &rng);
  if (!census.ok()) {
    std::fprintf(stderr, "census simulation failed\n");
    return 1;
  }
  std::printf("US-census-style microdata: %zu rows, %zu attributes\n",
              census->num_rows(), census->num_columns());

  core::HybridOptions options;
  options.epsilon = epsilon;
  auto release = core::SynthesizeHybrid(*census, options, &rng);
  if (!release.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 release.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "hybrid synthesis: %lld partitions (%lld skipped), budget %.3f "
      "(counts %.3f + copula %.3f)\n",
      static_cast<long long>(release->num_partitions),
      static_cast<long long>(release->num_skipped_partitions), epsilon,
      release->epsilon_counts, release->epsilon_copula);

  // Basic utility report: per-attribute means and the gender split.
  std::printf("\n%-12s%14s%14s\n", "attribute", "original", "synthetic");
  for (std::size_t j = 0; j < census->num_columns(); ++j) {
    std::printf("%-12s%14.2f%14.2f\n",
                census->schema().attribute(j).name.c_str(),
                stats::Mean(census->column(j)),
                stats::Mean(release->synthetic.column(j)));
  }

  Status io = data::WriteCsv(release->synthetic, out_path);
  if (!io.ok()) {
    std::fprintf(stderr, "CSV write failed: %s\n", io.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu synthetic rows to %s\n",
              release->synthetic.num_rows(), out_path);
  return 0;
}
