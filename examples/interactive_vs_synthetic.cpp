// Interactive vs. synthetic release — the paper's §1 motivation, measured.
//
//   $ ./build/examples/interactive_vs_synthetic
//
// An analyst wants to run an exploratory stream of range-count queries
// under a total budget epsilon = 1. Two regimes:
//   1. interactive: each query gets fresh Laplace noise and consumes
//      budget; after epsilon is exhausted the database goes dark;
//   2. non-interactive (DPCopula): the whole budget buys one synthetic
//      dataset that answers *unlimited* queries.
// The interactive answers are sharper early (tiny sensitivity-1 noise) but
// the supply is finite; DPCopula's error is flat forever.
#include <cstdio>

#include "baselines/range_estimator.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "dp/interactive.h"
#include "query/metrics.h"
#include "query/workload.h"

int main() {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.
  const double total_epsilon = 1.0;
  const double per_query_epsilon = 0.02;  // 50 interactive queries total.

  Rng rng(55);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("x", 400),
      data::MarginSpec::Gaussian("y", 400)};
  auto table = data::GenerateGaussianDependent(
      specs, *data::Equicorrelation(2, 0.5), 30000, &rng);
  if (!table.ok()) return 1;

  // Regime 1: interactive engine.
  dp::InteractiveEngine engine(*table, total_epsilon);
  // Regime 2: one synthetic release with the same budget.
  core::DpCopulaOptions options;
  options.epsilon = total_epsilon;
  auto synth = core::Synthesize(*table, options, &rng);
  if (!synth.ok()) return 1;
  baselines::TableEstimator synthetic(synth->synthetic, "DPCopula");

  const auto workload = query::RandomWorkload(table->schema(), 200, &rng);
  std::printf("%-10s%18s%20s\n", "query#", "interactive RE",
              "synthetic RE");
  double interactive_total = 0.0, synthetic_total = 0.0;
  std::size_t interactive_count = 0;
  for (std::size_t q = 0; q < workload.size(); ++q) {
    std::vector<double> dlo(workload[q].lo.begin(), workload[q].lo.end());
    std::vector<double> dhi(workload[q].hi.begin(), workload[q].hi.end());
    const double truth =
        static_cast<double>(table->RangeCount(dlo, dhi));
    const double synth_ans =
        synthetic.EstimateRangeCount(workload[q].lo, workload[q].hi);
    synthetic_total += query::RelativeError(truth, synth_ans, 1.0);

    auto ans = engine.AnswerRangeCount(workload[q].lo, workload[q].hi,
                                       per_query_epsilon, &rng);
    if (ans.ok()) {
      interactive_total += query::RelativeError(truth, *ans, 1.0);
      ++interactive_count;
    }
    if ((q + 1) % 50 == 0) {
      std::printf("%-10zu%18s%20.3f\n", q + 1,
                  ans.ok() ? "answering" : "BUDGET EXHAUSTED",
                  synthetic_total / static_cast<double>(q + 1));
    }
  }
  std::printf(
      "\ninteractive: answered %zu of %zu queries (mean RE %.3f), then went "
      "dark.\n",
      interactive_count, workload.size(),
      interactive_total / static_cast<double>(interactive_count));
  std::printf(
      "synthetic:   answered all %zu queries (mean RE %.3f) and can answer "
      "any number more.\n",
      workload.size(),
      synthetic_total / static_cast<double>(workload.size()));
  std::printf(
      "\nthis is the paper's case for non-interactive release: one "
      "epsilon-DP synthesis amortizes the budget over an unbounded "
      "workload.\n");
  return 0;
}
