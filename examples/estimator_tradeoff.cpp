// Estimator trade-off: DPCopula-Kendall vs DPCopula-MLE (§4.1 vs §4.2).
// Shows the two private correlation estimators side by side on the same
// data: estimated matrices, their distance to the true dependence, and
// wall-clock cost.
//
//   $ ./build/examples/estimator_tradeoff
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "copula/kendall_estimator.h"
#include "copula/mle_estimator.h"
#include "data/generator.h"

int main() {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.

  Rng rng(11);
  const std::size_t m = 4;
  const linalg::Matrix truth = data::Ar1Correlation(m, 0.6);
  std::vector<data::MarginSpec> margins;
  for (std::size_t j = 0; j < m; ++j) {
    margins.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), 1000));
  }
  auto table = data::GenerateGaussianDependent(margins, truth, 100000, &rng);
  if (!table.ok()) return 1;

  std::printf("true correlation (AR(1), rho=0.6):\n%s\n",
              truth.ToString(3).c_str());

  for (double epsilon2 : {0.1, 1.0}) {
    std::printf("--- epsilon2 = %.1f ---\n", epsilon2);
    {
      auto start = std::chrono::steady_clock::now();
      auto est = copula::EstimateKendallCorrelation(*table, epsilon2, &rng);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      if (!est.ok()) return 1;
      std::printf(
          "Kendall (subsampled to %lld rows, %.3f s, repaired=%s):\n%s",
          static_cast<long long>(est->rows_used), secs,
          est->repaired ? "yes" : "no",
          est->correlation.ToString(3).c_str());
      std::printf("  max |error| = %.3f\n\n",
                  est->correlation.MaxAbsDiff(truth));
    }
    {
      auto start = std::chrono::steady_clock::now();
      auto est = copula::EstimateMleCorrelation(*table, epsilon2, &rng);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      if (!est.ok()) return 1;
      std::printf("MLE (%lld partitions of %lld rows, %.3f s):\n%s",
                  static_cast<long long>(est->num_partitions),
                  static_cast<long long>(est->rows_per_partition), secs,
                  est->correlation.ToString(3).c_str());
      std::printf("  max |error| = %.3f\n\n",
                  est->correlation.MaxAbsDiff(truth));
    }
  }
  std::printf(
      "takeaway (paper Fig. 6): Kendall's lower per-coefficient sensitivity "
      "4/(n+1) gives a more accurate private correlation matrix than the "
      "sample-and-aggregate MLE at equal budget.\n");
  return 0;
}
