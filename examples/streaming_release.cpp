// Streaming release: the paper's "dynamically evolving datasets" future-
// work scenario. Data arrives in monthly batches; each batch is fitted
// with the full per-batch budget (batches are disjoint, so parallel
// composition applies), the model is merged with exponential decay, and a
// fresh synthetic snapshot is published after every batch — followed by an
// empirical privacy audit of the final release.
//
//   $ ./build/examples/streaming_release
#include <cstdio>

#include "common/rng.h"
#include "core/streaming.h"
#include "data/generator.h"
#include "query/privacy_metrics.h"
#include "stats/kendall.h"

int main() {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.

  Rng rng(77);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("load", 200),
      data::MarginSpec::Gaussian("latency", 200)};
  const data::Schema schema(
      {{"load", 200}, {"latency", 200}});

  core::StreamingSynthesizer::Options options;
  options.epsilon_per_batch = 1.0;
  options.decay = 0.7;  // Favor recent months.
  core::StreamingSynthesizer synthesizer(schema, options);

  std::printf("%-8s%14s%18s%18s\n", "month", "batch rows",
              "true tau", "synthetic tau");
  data::Table last_batch{schema};
  for (int month = 1; month <= 6; ++month) {
    // The dependence drifts over time: correlation strengthens.
    const double rho = 0.2 + 0.1 * month;
    auto corr = data::Equicorrelation(2, rho);
    auto batch =
        data::GenerateGaussianDependent(specs, *corr, 4000, &rng);
    if (!batch.ok()) return 1;
    if (!synthesizer.Ingest(*batch, &rng).ok()) return 1;

    auto snapshot = synthesizer.Synthesize(10000, &rng);
    if (!snapshot.ok()) return 1;
    const double true_tau =
        *stats::KendallTau(batch->column(0), batch->column(1));
    const double synth_tau =
        *stats::KendallTau(snapshot->column(0), snapshot->column(1));
    std::printf("%-8d%14zu%18.3f%18.3f\n", month, batch->num_rows(),
                true_tau, synth_tau);
    last_batch = *batch;
  }

  // Privacy audit of the final snapshot against the last batch.
  auto snapshot = synthesizer.Synthesize(4000, &rng);
  if (!snapshot.ok()) return 1;
  auto dcr = query::DistanceToClosestRecord(*snapshot, last_batch);
  auto risk = query::AttributeDisclosureRisk(*snapshot, last_batch, 1);
  auto baseline = query::MajorityGuessAccuracy(last_batch, 1);
  if (!dcr.ok() || !risk.ok() || !baseline.ok()) return 1;
  std::printf(
      "\nprivacy audit: DCR mean=%.4f median=%.4f exact-matches=%.2f%%\n",
      dcr->mean, dcr->median, 100.0 * dcr->frac_zero);
  std::printf(
      "attribute-disclosure accuracy=%.3f (majority baseline %.3f)\n",
      *risk, *baseline);
  std::printf(
      "\nthe synthetic stream tracks the drifting dependence while the "
      "audit shows no record memorization (epsilon=%.1f per batch).\n",
      options.epsilon_per_batch);
  return 0;
}
