// Workload accuracy: the paper's evaluation loop as a library consumer
// would run it — generate a range-count workload, answer it from a DP
// synthetic dataset and from the PSD baseline, and report relative error
// per privacy budget.
//
//   $ ./build/examples/workload_accuracy
#include <cstdio>

#include "baselines/psd.h"
#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "query/evaluator.h"
#include "query/workload.h"

int main() {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.

  Rng rng(99);
  // 4-D data, domain 500 each: a 6.25 * 10^10-cell domain — far beyond any
  // dense histogram, routine for DPCopula and PSD.
  std::vector<data::MarginSpec> margins;
  for (int j = 0; j < 4; ++j) {
    margins.push_back(
        data::MarginSpec::Gaussian("x" + std::to_string(j), 500));
  }
  auto table = data::GenerateGaussianDependent(
      margins, data::Ar1Correlation(4, 0.5), 30000, &rng);
  if (!table.ok()) return 1;

  const auto workload = query::RandomWorkload(table->schema(), 300, &rng);

  std::printf("%-10s%16s%16s\n", "epsilon", "DPCopula RE", "PSD RE");
  for (double epsilon : {0.1, 0.5, 1.0, 2.0}) {
    core::DpCopulaOptions options;
    options.epsilon = epsilon;
    auto synth = core::Synthesize(*table, options, &rng);
    if (!synth.ok()) return 1;
    baselines::TableEstimator dpc(synth->synthetic, "DPCopula");
    auto dpc_eval = query::EvaluateWorkload(*table, dpc, workload, 1.0);

    auto psd = baselines::PsdTree::Build(*table, epsilon, &rng);
    if (!psd.ok()) return 1;
    auto psd_eval = query::EvaluateWorkload(*table, **psd, workload, 1.0);

    std::printf("%-10.2f%16.3f%16.3f\n", epsilon,
                dpc_eval->mean_relative_error, psd_eval->mean_relative_error);
  }
  std::printf(
      "\nlower is better; DPCopula holds accuracy on large-domain data "
      "where dense-histogram methods cannot run at all.\n");
  return 0;
}
