// Quickstart: synthesize a differentially private copy of a small
// two-attribute dataset and compare a few statistics.
//
//   $ ./build/examples/quickstart
//
// Walks the minimal API path: build a Table, pick DpCopulaOptions, call
// core::Synthesize, inspect the result.
#include <cstdio>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "data/generator.h"
#include "stats/descriptive.h"
#include "stats/kendall.h"

int main() {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.

  // 1. Make a toy dataset: 10000 rows, two correlated attributes on
  //    domains of size 100 (in real use you would load your own table,
  //    e.g. with data::ReadCsv).
  Rng rng(7);
  std::vector<data::MarginSpec> margins = {
      data::MarginSpec::Gaussian("age_like", 100),
      data::MarginSpec::Zipf("income_like", 100, 1.1),
  };
  auto correlation = data::Equicorrelation(2, 0.6);
  auto original =
      data::GenerateGaussianDependent(margins, *correlation, 10000, &rng);
  if (!original.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 original.status().ToString().c_str());
    return 1;
  }

  // 2. Synthesize with a total privacy budget of epsilon = 1.
  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  options.budget_ratio_k = 8.0;  // eps1/eps2 split (margins vs correlation).
  auto result = core::Synthesize(*original, options, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Compare: the synthetic table mimics margins and dependence without
  //    exposing any individual row.
  const data::Table& synthetic = result->synthetic;
  std::printf("original rows: %zu, synthetic rows: %zu\n",
              original->num_rows(), synthetic.num_rows());
  std::printf("column means (original vs synthetic):\n");
  for (std::size_t j = 0; j < 2; ++j) {
    std::printf("  %-12s %8.2f vs %8.2f\n",
                original->schema().attribute(j).name.c_str(),
                stats::Mean(original->column(j)),
                stats::Mean(synthetic.column(j)));
  }
  const double tau_orig =
      *stats::KendallTau(original->column(0), original->column(1));
  const double tau_synth =
      *stats::KendallTau(synthetic.column(0), synthetic.column(1));
  std::printf("Kendall tau: %.3f vs %.3f\n", tau_orig, tau_synth);
  std::printf("DP correlation matrix estimate:\n%s",
              result->correlation.ToString(3).c_str());
  std::printf("privacy budget spent: %.4f of %.4f\n", result->budget.spent(),
              result->budget.total_epsilon());
  return 0;
}
