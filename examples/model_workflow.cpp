// Model workflow: fit once, publish the *model*, resample forever.
//
//   $ ./build/examples/model_workflow
//
// A statistical agency often wants to publish the fitted DP generative
// model rather than a single synthetic table: consumers can then draw as
// many synthetic datasets as they like (sampling is post-processing, so the
// privacy guarantee is unchanged). This example fits a model, saves it,
// reloads it in a "consumer" role, and shows that independent resamples
// agree with each other and with the original statistics.
#include <cstdio>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/model_io.h"
#include "data/generator.h"
#include "stats/descriptive.h"
#include "stats/kendall.h"

int main() {
  using namespace dpcopula;  // NOLINT(build/namespaces) — example binary.
  const char* model_path = "/tmp/dpcopula_model.txt";

  // --- Curator side: fit and publish the model. ---
  Rng curator_rng(2024);
  std::vector<data::MarginSpec> specs = {
      data::MarginSpec::Gaussian("duration", 300),
      data::MarginSpec::Zipf("category", 120, 1.0),
      data::MarginSpec::Gaussian("amount", 500)};
  auto original = data::GenerateGaussianDependent(
      specs, data::Ar1Correlation(3, 0.55), 30000, &curator_rng);
  if (!original.ok()) return 1;

  core::DpCopulaOptions options;
  options.epsilon = 1.0;
  auto fit = core::Synthesize(*original, options, &curator_rng);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  core::DpCopulaModel model =
      core::ModelFromSynthesis(original->schema(), *fit);
  if (!core::SaveModel(model, model_path).ok()) return 1;
  std::printf("curator: fitted with epsilon=%.1f, model saved to %s\n",
              options.epsilon, model_path);

  // --- Consumer side: load and resample (no access to the original). ---
  Rng consumer_rng(777);
  auto loaded = core::LoadModel(model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("consumer: loaded %zu-attribute model (fitted on %zu rows)\n\n",
              loaded->schema.num_attributes(), loaded->fitted_rows);

  std::printf("%-22s%12s%12s%12s\n", "statistic", "original", "resample1",
              "resample2");
  auto s1 = core::SampleFromModel(*loaded, 30000, &consumer_rng);
  auto s2 = core::SampleFromModel(*loaded, 30000, &consumer_rng);
  if (!s1.ok() || !s2.ok()) return 1;
  for (std::size_t j = 0; j < 3; ++j) {
    std::printf("mean(%-16s)%12.2f%12.2f%12.2f\n",
                original->schema().attribute(j).name.c_str(),
                stats::Mean(original->column(j)),
                stats::Mean(s1->column(j)), stats::Mean(s2->column(j)));
  }
  const double tau_orig =
      *stats::KendallTau(original->column(0), original->column(2));
  const double tau_s1 = *stats::KendallTau(s1->column(0), s1->column(2));
  const double tau_s2 = *stats::KendallTau(s2->column(0), s2->column(2));
  std::printf("%-22s%12.3f%12.3f%12.3f\n", "tau(duration,amount)", tau_orig,
              tau_s1, tau_s2);
  std::printf(
      "\nresampling is free: the model is the DP release, and every draw "
      "from it carries the same epsilon=%.1f guarantee.\n",
      options.epsilon);
  return 0;
}
