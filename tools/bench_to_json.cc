// bench_to_json — folds a google-benchmark JSON report into the committed
// throughput ledger (BENCH_sampler.json) and optionally gates on
// regressions against it.
//
//   bench_to_json --in <gbench.json> --out BENCH_sampler.json
//       [--label <run-label>] [--check [--max-drop 0.20]]
//
// The ledger is an object with a "runs" array; each run holds the label
// plus one {name, rows_per_sec, real_time_ms} entry per benchmark that
// reported items_per_second (rows/sec, via SetItemsProcessed). With
// --check, every benchmark of the NEW run is compared against the same
// name in the FIRST run of the ledger (the committed baseline): a drop of
// more than --max-drop (default 0.20, i.e. 20%) fails with exit code 1 so
// CI can gate on it. Parsing is a deliberately small scanner — both file
// shapes are machine-written with flat benchmark objects, so a full JSON
// library would be dead weight.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/status.h"

namespace {

struct BenchRow {
  std::string name;
  double rows_per_sec = 0.0;
  double real_time_ms = 0.0;
};

struct Run {
  std::string label;
  std::vector<BenchRow> rows;
};

/// Value of the string key `"key":` inside [begin, end), or nullopt.
std::optional<std::string> FindStringKey(const std::string& text,
                                         std::size_t begin, std::size_t end,
                                         const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle, begin);
  if (pos == std::string::npos || pos >= end) return std::nullopt;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos || pos >= end) return std::nullopt;
  pos = text.find('"', pos);
  if (pos == std::string::npos || pos >= end) return std::nullopt;
  const std::size_t close = text.find('"', pos + 1);
  if (close == std::string::npos || close > end) return std::nullopt;
  return text.substr(pos + 1, close - pos - 1);
}

/// Value of the numeric key `"key":` inside [begin, end), or nullopt.
std::optional<double> FindNumberKey(const std::string& text,
                                    std::size_t begin, std::size_t end,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle, begin);
  if (pos == std::string::npos || pos >= end) return std::nullopt;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos || pos >= end) return std::nullopt;
  ++pos;
  while (pos < end && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  char* parse_end = nullptr;
  const double value = std::strtod(text.c_str() + pos, &parse_end);
  if (parse_end == text.c_str() + pos) return std::nullopt;
  return value;
}

/// Extracts the flat objects of the top-level "benchmarks"/"runs"-style
/// array starting at `array_key`, calling `visit(begin, end)` with the
/// bounds of each depth-1 object (which may itself contain one nested
/// array of flat objects, e.g. a run's "benchmarks" list).
bool ForEachArrayObject(
    const std::string& text, const std::string& array_key,
    const std::function<void(std::size_t, std::size_t)>& visit) {
  const std::string needle = "\"" + array_key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return false;
  int depth = 0;
  std::size_t object_begin = 0;
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') {
      if (depth == 0) object_begin = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) visit(object_begin, i + 1);
    } else if (c == ']' && depth == 0) {
      return true;
    }
  }
  return true;
}

/// Parses a google-benchmark JSON report: keeps every benchmark entry that
/// reported items_per_second (aggregates like _mean/_stddev excluded —
/// their run_type is "aggregate").
std::vector<BenchRow> ParseGoogleBenchmark(const std::string& text) {
  std::vector<BenchRow> rows;
  ForEachArrayObject(text, "benchmarks", [&](std::size_t b, std::size_t e) {
    const auto name = FindStringKey(text, b, e, "name");
    const auto ips = FindNumberKey(text, b, e, "items_per_second");
    if (!name || !ips) return;
    const auto run_type = FindStringKey(text, b, e, "run_type");
    if (run_type && *run_type != "iteration") return;
    BenchRow row;
    row.name = *name;
    row.rows_per_sec = *ips;
    if (const auto rt = FindNumberKey(text, b, e, "real_time")) {
      row.real_time_ms = *rt;
      const auto unit = FindStringKey(text, b, e, "time_unit");
      if (unit && *unit == "ns") row.real_time_ms = *rt / 1e6;
      if (unit && *unit == "us") row.real_time_ms = *rt / 1e3;
      if (unit && *unit == "s") row.real_time_ms = *rt * 1e3;
    }
    rows.push_back(std::move(row));
  });
  return rows;
}

/// Parses a ledger previously written by this tool.
std::vector<Run> ParseLedger(const std::string& text) {
  std::vector<Run> runs;
  ForEachArrayObject(text, "runs", [&](std::size_t b, std::size_t e) {
    Run run;
    if (const auto label = FindStringKey(text, b, e, "label")) {
      run.label = *label;
    }
    const std::string slice = text.substr(b, e - b);
    ForEachArrayObject(slice, "benchmarks",
                       [&](std::size_t bb, std::size_t be) {
      const auto name = FindStringKey(slice, bb, be, "name");
      const auto rps = FindNumberKey(slice, bb, be, "rows_per_sec");
      if (!name || !rps) return;
      BenchRow row;
      row.name = *name;
      row.rows_per_sec = *rps;
      if (const auto rt = FindNumberKey(slice, bb, be, "real_time_ms")) {
        row.real_time_ms = *rt;
      }
      run.rows.push_back(std::move(row));
    });
    runs.push_back(std::move(run));
  });
  return runs;
}

std::string RenderLedger(const std::vector<Run>& runs) {
  std::ostringstream out;
  out.precision(15);
  out << "{\n  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    out << "    {\n      \"label\": \"" << runs[r].label
        << "\",\n      \"benchmarks\": [\n";
    const auto& rows = runs[r].rows;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "        {\"name\": \"" << rows[i].name
          << "\", \"rows_per_sec\": " << rows[i].rows_per_sec
          << ", \"real_time_ms\": " << rows[i].real_time_ms << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (r + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const BenchRow* FindRow(const Run& run, const std::string& name) {
  for (const auto& row : run.rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

int Usage() {
  std::cerr << "usage: bench_to_json --in <gbench.json> --out <ledger.json>"
               " [--label <str>] [--check] [--max-drop <frac>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, out_path, label = "local";
  bool check = false;
  double max_drop = 0.20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in" && i + 1 < argc) {
      in_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--max-drop" && i + 1 < argc) {
      max_drop = std::strtod(argv[++i], nullptr);
    } else {
      return Usage();
    }
  }
  if (in_path.empty() || out_path.empty()) return Usage();

  const auto report = ReadFile(in_path);
  if (!report) {
    std::cerr << "bench_to_json: cannot read " << in_path << "\n";
    return 2;
  }
  Run fresh;
  fresh.label = label;
  fresh.rows = ParseGoogleBenchmark(*report);
  if (fresh.rows.empty()) {
    std::cerr << "bench_to_json: no benchmarks with items_per_second in "
              << in_path << "\n";
    return 2;
  }

  std::vector<Run> runs;
  if (const auto existing = ReadFile(out_path)) {
    runs = ParseLedger(*existing);
  }

  int failures = 0;
  if (check && !runs.empty()) {
    const Run& baseline = runs.front();
    for (const auto& row : fresh.rows) {
      const BenchRow* base = FindRow(baseline, row.name);
      if (base == nullptr || base->rows_per_sec <= 0.0) continue;
      const double drop = 1.0 - row.rows_per_sec / base->rows_per_sec;
      if (drop > max_drop) {
        std::cerr << "REGRESSION " << row.name << ": "
                  << row.rows_per_sec << " rows/s vs baseline "
                  << base->rows_per_sec << " (drop "
                  << static_cast<int>(std::lround(drop * 100.0)) << "% > "
                  << static_cast<int>(std::lround(max_drop * 100.0))
                  << "%)\n";
        ++failures;
      } else {
        std::cout << "ok " << row.name << ": " << row.rows_per_sec
                  << " rows/s (baseline " << base->rows_per_sec << ")\n";
      }
    }
  } else if (check) {
    std::cout << "bench_to_json: no baseline yet; ledger seeded, not "
                 "checked\n";
  }

  runs.push_back(std::move(fresh));
  const std::string rendered = RenderLedger(runs);
  const auto status = dpcopula::WriteFileAtomic(
      out_path, [&](std::ostream& out) -> dpcopula::Status {
        out << rendered;
        return dpcopula::Status::OK();
      });
  if (!status.ok()) {
    std::cerr << "bench_to_json: " << status.message() << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << " (" << runs.size() << " run"
            << (runs.size() == 1 ? "" : "s") << ")\n";
  return failures == 0 ? 0 : 1;
}
