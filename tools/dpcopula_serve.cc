// dpcopula_serve: the DPCopula model-serving daemon.
//
// Loads one or more fitted models (written by `dpcopula --model-out` /
// core::SaveModel) and serves synthetic-data sampling over a line-delimited
// TCP protocol (see src/serve/protocol.h and DESIGN.md §13). Sampling from
// a released model is pure post-processing — the daemon's job is admission
// control (per-tenant budget ledgers, persisted across restarts), freshness
// (mtime-based hot reload with atomic version swap), and backpressure
// (bounded accept queue with fast 503 rejects).
//
//   daemon:  dpcopula_serve --model census=census.model --port 7070 \
//                [--ledger budgets.ledger] [--default-allowance X] \
//                [--workers N] [--sample-threads N] [--queue-capacity N] \
//                [--max-rows N] [--host H] [--port-file PATH] \
//                [--duration-seconds N] [--trace-json PATH] \
//                [--trace-chrome PATH] [--profile] [--log-level LEVEL]
//   client:  dpcopula_serve --client HOST:PORT --request "PING"
//
// The daemon runs until SIGINT/SIGTERM (or --duration-seconds elapses),
// then shuts down cleanly and writes any requested obs reports. The client
// mode sends a single request line and prints the response — enough for
// smoke tests and scripting without a separate netcat dependency.

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/log.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace_export.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct ServeArgs {
  std::vector<std::pair<std::string, std::string>> models;  // name -> path
  dpcopula::serve::ServerOptions server;
  std::string port_file;
  long long duration_seconds = 0;  // 0 = run until signalled.
  std::string client;              // HOST:PORT → client mode.
  std::string request;
  std::string trace_json;
  std::string trace_chrome;
  bool profile = false;
  std::string log_level = "info";
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model NAME=PATH [--model NAME=PATH ...]\n"
      "          [--host H] [--port N] [--port-file PATH]\n"
      "          [--workers N] [--sample-threads N] [--queue-capacity N]\n"
      "          [--max-rows N] [--ledger PATH] [--default-allowance X]\n"
      "          [--duration-seconds N] [--trace-json PATH]\n"
      "          [--trace-chrome PATH] [--profile] [--log-level LEVEL]\n"
      "       %s --client HOST:PORT --request LINE\n",
      argv0, argv0);
}

bool ParseArgs(int argc, char** argv, ServeArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = next();
      if (!v) return false;
      const std::string spec = v;
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--model wants NAME=PATH, got '%s'\n", v);
        return false;
      }
      args->models.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--host") {
      const char* v = next();
      if (!v) return false;
      args->server.host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (!v) return false;
      args->server.port = std::atoi(v);
    } else if (flag == "--port-file") {
      const char* v = next();
      if (!v) return false;
      args->port_file = v;
    } else if (flag == "--workers") {
      const char* v = next();
      if (!v) return false;
      args->server.num_workers = std::atoi(v);
    } else if (flag == "--sample-threads") {
      const char* v = next();
      if (!v) return false;
      args->server.sample_threads = std::atoi(v);
    } else if (flag == "--queue-capacity") {
      const char* v = next();
      if (!v) return false;
      args->server.queue_capacity =
          static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--max-rows") {
      const char* v = next();
      if (!v) return false;
      args->server.max_rows_per_request =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--ledger") {
      const char* v = next();
      if (!v) return false;
      args->server.ledger.persist_path = v;
    } else if (flag == "--default-allowance") {
      const char* v = next();
      if (!v) return false;
      args->server.ledger.default_allowance = std::atof(v);
    } else if (flag == "--duration-seconds") {
      const char* v = next();
      if (!v) return false;
      args->duration_seconds = std::atoll(v);
    } else if (flag == "--client") {
      const char* v = next();
      if (!v) return false;
      args->client = v;
    } else if (flag == "--request") {
      const char* v = next();
      if (!v) return false;
      args->request = v;
    } else if (flag == "--trace-json") {
      const char* v = next();
      if (!v) return false;
      args->trace_json = v;
    } else if (flag == "--trace-chrome") {
      const char* v = next();
      if (!v) return false;
      args->trace_chrome = v;
    } else if (flag == "--profile") {
      args->profile = true;
    } else if (flag == "--log-level") {
      const char* v = next();
      if (!v) return false;
      args->log_level = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

// Sends one request line and prints the response. SAMPLE csv responses are
// multi-line and end with "END"; everything else is a single line.
int RunClient(const std::string& target, const std::string& request) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--client wants HOST:PORT, got '%s'\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host '%s' (want an IPv4 address)\n",
                 host.c_str());
    ::close(fd);
    return 2;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }
  const std::string line = request + "\n";
  if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(line.size())) {
    std::perror("send");
    ::close(fd);
    return 1;
  }
  std::string buffer;
  char chunk[4096];
  bool multi_line = false;
  bool saw_status = false;
  int exit_code = 1;
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      const std::string response_line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      std::printf("%s\n", response_line.c_str());
      if (!saw_status) {
        saw_status = true;
        exit_code = response_line.rfind("OK", 0) == 0 ? 0 : 1;
        multi_line = response_line.rfind("OK SAMPLE", 0) == 0;
        if (!multi_line) break;
      } else if (response_line == "END") {
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpcopula;  // NOLINT(build/namespaces) — CLI binary.
  ServeArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  if (!args.client.empty()) {
    if (args.request.empty()) {
      std::fprintf(stderr, "--client needs --request\n");
      return 2;
    }
    return RunClient(args.client, args.request);
  }

  if (args.models.empty()) {
    std::fprintf(stderr, "at least one --model NAME=PATH is required\n");
    Usage(argv[0]);
    return 2;
  }

  obs::ObsConfig obs_config;
  if (!obs::ParseLogLevel(args.log_level, &obs_config.log_level)) {
    std::fprintf(stderr, "unknown log level '%s'\n", args.log_level.c_str());
    return 2;
  }
  obs_config.trace = !args.trace_json.empty() || !args.trace_chrome.empty();
  obs_config.metrics = !args.trace_json.empty();
  obs_config.profile = args.profile;
  obs::SetObsConfig(obs_config);
  std::optional<obs::ProfileSession> profile_session;
  if (args.profile) profile_session.emplace();

  Result<std::unique_ptr<serve::Server>> created =
      serve::Server::Create(args.server);
  if (!created.ok()) {
    std::fprintf(stderr, "failed to start server: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::Server> server = created.MoveValueUnsafe();
  for (const auto& [name, path] : args.models) {
    Status added = server->AddModel(name, path);
    if (!added.ok()) {
      std::fprintf(stderr, "failed to load model '%s' from %s: %s\n",
                   name.c_str(), path.c_str(), added.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "serving model '%s' from %s\n", name.c_str(),
                 path.c_str());
  }

  if (!args.port_file.empty()) {
    std::ofstream out(args.port_file);
    out << server->port() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write port file %s\n",
                   args.port_file.c_str());
      return 1;
    }
  }
  std::printf("listening on %s:%d\n", args.server.host.c_str(),
              server->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(args.duration_seconds > 0 ? args.duration_seconds
                                                     : 0);
  while (g_stop == 0) {
    if (args.duration_seconds > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server->Shutdown();
  const serve::Server::Stats stats = server->GetStats();
  std::fprintf(stderr,
               "served %llu requests (%llu samples, %llu rows, "
               "%llu budget rejections, %llu busy rejections)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.samples_ok),
               static_cast<unsigned long long>(stats.rows_sampled),
               static_cast<unsigned long long>(stats.budget_rejections),
               static_cast<unsigned long long>(
                   stats.connections_rejected_busy));
  server.reset();

  profile_session.reset();
  int exit_code = 0;
  if (!args.trace_chrome.empty()) {
    Status cs = obs::WriteChromeTrace(args.trace_chrome);
    if (!cs.ok()) {
      std::fprintf(stderr, "failed to write chrome trace %s: %s\n",
                   args.trace_chrome.c_str(), cs.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!args.trace_json.empty()) {
    Status ts = obs::WriteRunReport(args.trace_json, nullptr);
    if (!ts.ok()) {
      std::fprintf(stderr, "failed to write trace report %s: %s\n",
                   args.trace_json.c_str(), ts.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}
