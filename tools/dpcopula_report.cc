// dpcopula_report — merges observability artifacts into one markdown
// performance report.
//
//   dpcopula_report --bench BENCH_sampler.json --bench BENCH_kendall.json
//                   --run-report report.json --out docs/PERF_REPORT.md
//   (one command line; wrapped here for width)
//
// Inputs:
//   --bench PATH       a bench_to_json ledger ({"runs":[{label, benchmarks:
//                      [{name, rows_per_sec, real_time_ms}]}]}); repeatable.
//                      The first run is the committed baseline, the last is
//                      "current"; regressions beyond 20% are flagged.
//   --run-report PATH  a dpcopula/dpcopula_eval --trace-json run report
//                      (version >= 2); repeatable. Contributes per-stage
//                      percentile tables, profile gauges (peak RSS, hardware
//                      counters), counters, and the budget audit.
//   --out PATH         output markdown (default docs/PERF_REPORT.md).
//
// Exits non-zero on unreadable or malformed input: a report silently built
// from half the artifacts is worse than no report.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON value + recursive-descent parser -----------------------
//
// The tool consumes only documents this repo itself writes, so the parser
// favors smallness over completeness: no \uXXXX decoding beyond pass-through
// and no streaming. Objects keep insertion order via a vector of pairs so
// tables render in the order the producer emitted them.

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : *object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double NumberOr(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }
  bool ParseString(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u':
            // Pass the escape through untouched; report content is ASCII.
            if (pos_ + 4 > s_.size()) return false;
            out->append("\\u").append(s_, pos_, 4);
            pos_ += 4;
            continue;
          default:
            c = esc;  // ", \, /
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }
  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    return true;
  }
  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    out->array = std::make_shared<JsonArray>();
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      SkipWs();
      if (!ParseValue(&v)) return false;
      out->array->push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    out->object = std::make_shared<JsonObject>();
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= s_.size() || !ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object->emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool LoadJsonFile(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dpcopula_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (!JsonParser(text).Parse(out)) {
    std::fprintf(stderr, "dpcopula_report: malformed JSON in %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

// --- Formatting ----------------------------------------------------------

std::string FormatSeconds(double s) {
  char buf[48];
  if (s <= 0.0) {
    return "0";
  } else if (s < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", s * 1e9);
  } else if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string FormatBytes(double b) {
  char buf[48];
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

std::string FormatCount(double v) {
  char buf[48];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

// --- Bench ledgers -------------------------------------------------------

constexpr double kRegressionThreshold = 0.20;

/// Renders one ledger's baseline-vs-current table. Returns false on a
/// structurally invalid ledger.
bool AppendBenchSection(const std::string& path, const JsonValue& ledger,
                        std::string* out, int* regressions) {
  const JsonValue* runs = ledger.Find("runs");
  if (runs == nullptr || runs->type != JsonValue::Type::kArray ||
      runs->array->empty()) {
    std::fprintf(stderr, "dpcopula_report: %s has no runs\n", path.c_str());
    return false;
  }
  const JsonValue& baseline = runs->array->front();
  const JsonValue& current = runs->array->back();
  const bool has_delta = runs->array->size() > 1;

  auto label_of = [](const JsonValue& run) {
    const JsonValue* l = run.Find("label");
    return (l != nullptr && l->type == JsonValue::Type::kString) ? l->string
                                                                 : "?";
  };
  std::map<std::string, double> baseline_rate;
  if (const JsonValue* b = baseline.Find("benchmarks");
      b != nullptr && b->type == JsonValue::Type::kArray) {
    for (const JsonValue& bench : *b->array) {
      const JsonValue* name = bench.Find("name");
      const JsonValue* rate = bench.Find("rows_per_sec");
      if (name == nullptr || rate == nullptr) continue;
      baseline_rate[name->string] = rate->NumberOr(0.0);
    }
  }

  *out += "### `" + path + "`\n\n";
  *out += "Baseline `" + label_of(baseline) + "` vs current `" +
          label_of(current) + "` (" + std::to_string(runs->array->size()) +
          " runs recorded).\n\n";
  *out +=
      "| benchmark | baseline rows/s | current rows/s | delta | time (ms) "
      "|\n|---|---:|---:|---:|---:|\n";

  const JsonValue* benches = current.Find("benchmarks");
  if (benches == nullptr || benches->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "dpcopula_report: %s run has no benchmarks\n",
                 path.c_str());
    return false;
  }
  for (const JsonValue& bench : *benches->array) {
    const JsonValue* name = bench.Find("name");
    const JsonValue* rate = bench.Find("rows_per_sec");
    const JsonValue* ms = bench.Find("real_time_ms");
    if (name == nullptr || rate == nullptr) continue;
    const double cur = rate->NumberOr(0.0);
    const auto base_it = baseline_rate.find(name->string);
    std::string delta = "n/a";
    if (has_delta && base_it != baseline_rate.end() &&
        base_it->second > 0.0) {
      const double rel = cur / base_it->second - 1.0;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * rel);
      delta = buf;
      if (rel < -kRegressionThreshold) {
        delta += " **REGRESSION**";
        ++*regressions;
      }
    }
    *out += "| `" + name->string + "` | " +
            (base_it != baseline_rate.end() ? FormatCount(base_it->second)
                                            : std::string("n/a")) +
            " | " + FormatCount(cur) + " | " + delta + " | " +
            (ms != nullptr ? FormatCount(ms->NumberOr(0.0)) : "n/a") + " |\n";
  }
  *out += "\n";
  return true;
}

// --- Run reports ---------------------------------------------------------

bool AppendRunReportSection(const std::string& path, const JsonValue& report,
                            std::string* out) {
  const JsonValue* version = report.Find("version");
  const JsonValue* metrics = report.Find("metrics");
  if (version == nullptr || metrics == nullptr) {
    std::fprintf(stderr, "dpcopula_report: %s is not a run report\n",
                 path.c_str());
    return false;
  }
  if (version->NumberOr(0.0) < 2.0) {
    std::fprintf(stderr,
                 "dpcopula_report: %s is a version %g report; stage "
                 "percentiles need version >= 2\n",
                 path.c_str(), version->NumberOr(0.0));
    return false;
  }
  *out += "### `" + path + "`\n\n";

  // Per-stage breakdown from the profile.* histograms.
  const JsonValue* histograms = metrics->Find("histograms");
  bool any_stage = false;
  std::string stage_table =
      "| stage | count | total | p50 | p90 | p99 | p99.9 | max "
      "|\n|---|---:|---:|---:|---:|---:|---:|---:|\n";
  double stage_total_seconds = 0.0;
  if (histograms != nullptr &&
      histograms->type == JsonValue::Type::kObject) {
    for (const auto& [name, h] : *histograms->object) {
      constexpr const char* kPrefix = "profile.";
      constexpr const char* kSuffix = "_seconds";
      if (name.rfind(kPrefix, 0) != 0) continue;
      const JsonValue* count = h.Find("count");
      if (count == nullptr || count->NumberOr(0.0) <= 0.0) continue;
      std::string stage = name.substr(std::strlen(kPrefix));
      const std::size_t suffix_at = stage.rfind(kSuffix);
      if (suffix_at != std::string::npos) stage.resize(suffix_at);
      const double sum = h.Find("sum_seconds") != nullptr
                             ? h.Find("sum_seconds")->NumberOr(0.0)
                             : 0.0;
      stage_total_seconds += sum;
      auto q = [&h](const char* key) {
        const JsonValue* v = h.Find(key);
        return FormatSeconds(v != nullptr ? v->NumberOr(0.0) : 0.0);
      };
      stage_table += "| " + stage + " | " + FormatCount(count->number) +
                     " | " + FormatSeconds(sum) + " | " + q("p50") + " | " +
                     q("p90") + " | " + q("p99") + " | " + q("p999") +
                     " | " + q("max_seconds") + " |\n";
      any_stage = true;
    }
  }
  if (any_stage) {
    *out += "Per-stage breakdown (scopes record inside workers, so totals "
            "approach CPU seconds at higher thread counts):\n\n";
    *out += stage_table;
    *out += "\nStage total: " + FormatSeconds(stage_total_seconds) + "\n\n";
  } else {
    *out += "No stage profile recorded (run with `--profile`).\n\n";
  }

  // Profile gauges: peak RSS + hardware counters.
  if (const JsonValue* gauges = metrics->Find("gauges");
      gauges != nullptr && gauges->type == JsonValue::Type::kObject) {
    const JsonValue* rss = gauges->Find("profile.peak_rss_bytes");
    if (rss != nullptr && rss->NumberOr(0.0) > 0.0) {
      *out += "Peak RSS: " + FormatBytes(rss->number) + ".\n";
    }
    const JsonValue* hw = gauges->Find("profile.hw_available");
    if (hw != nullptr) {
      if (hw->NumberOr(0.0) != 0.0) {
        auto g = [&gauges](const char* key) {
          const JsonValue* v = gauges->Find(key);
          return FormatCount(v != nullptr ? v->NumberOr(0.0) : 0.0);
        };
        *out += "Hardware counters: " + g("profile.hw_cycles") +
                " cycles, " + g("profile.hw_instructions") +
                " instructions, " + g("profile.hw_cache_misses") +
                " cache misses.\n";
      } else {
        *out += "Hardware counters unavailable (perf_event_open denied; "
                "common in containers).\n";
      }
    }
    *out += "\n";
  }

  // Dropped spans: from the trace section, plus the metrics counter when
  // it has been registered.
  if (const JsonValue* trace = report.Find("trace"); trace != nullptr) {
    const JsonValue* dropped = trace->Find("dropped_spans");
    const double n = dropped != nullptr ? dropped->NumberOr(0.0) : 0.0;
    if (n > 0.0) {
      *out += "**" + FormatCount(n) +
              " spans dropped** (tracer buffer cap hit; timings above are "
              "complete, the span tree is not).\n\n";
    }
  }

  // Budget audit (dpcopula runs only; eval reports have no budget).
  if (const JsonValue* budget = report.Find("budget"); budget != nullptr) {
    auto num = [&budget](const char* key) {
      const JsonValue* v = budget->Find(key);
      return v != nullptr ? v->NumberOr(0.0) : 0.0;
    };
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "Privacy budget: %.6g of %.6g spent across ",
                  num("spent"), num("total_epsilon"));
    *out += buf;
    const JsonValue* entries = budget->Find("entries");
    const std::size_t n =
        (entries != nullptr && entries->type == JsonValue::Type::kArray)
            ? entries->array->size()
            : 0;
    *out += std::to_string(n) + " mechanism charges.\n\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> bench_paths;
  std::vector<std::string> report_paths;
  std::string out_path = "docs/PERF_REPORT.md";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--bench") {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "--bench needs a path\n");
        return 2;
      }
      bench_paths.push_back(v);
    } else if (flag == "--run-report") {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "--run-report needs a path\n");
        return 2;
      }
      report_paths.push_back(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "--out needs a path\n");
        return 2;
      }
      out_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--bench LEDGER.json]... "
                   "[--run-report REPORT.json]... [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (bench_paths.empty() && report_paths.empty()) {
    std::fprintf(stderr,
                 "dpcopula_report: nothing to report (pass --bench and/or "
                 "--run-report)\n");
    return 2;
  }

  std::string out;
  out += "# Performance report\n\n";
  out += "Regenerated by `dpcopula_report`; do not edit by hand. Inputs: "
         "bench ledgers from `bench_to_json`, run reports from "
         "`dpcopula --trace-json --profile`.\n\n";

  int regressions = 0;
  if (!bench_paths.empty()) {
    out += "## Benchmarks\n\n";
    out += "First recorded run is the committed baseline; regressions "
           "beyond " +
           std::to_string(static_cast<int>(100 * kRegressionThreshold)) +
           "% are flagged.\n\n";
    for (const std::string& path : bench_paths) {
      JsonValue ledger;
      if (!LoadJsonFile(path, &ledger)) return 1;
      if (!AppendBenchSection(path, ledger, &out, &regressions)) return 1;
    }
  }
  if (!report_paths.empty()) {
    out += "## Instrumented runs\n\n";
    for (const std::string& path : report_paths) {
      JsonValue report;
      if (!LoadJsonFile(path, &report)) return 1;
      if (!AppendRunReportSection(path, report, &out)) return 1;
    }
  }
  if (regressions > 0) {
    out += "---\n\n**" + std::to_string(regressions) +
           " benchmark(s) regressed beyond the threshold.**\n";
  }

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "dpcopula_report: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  f << out;
  f.close();
  if (!f) {
    std::fprintf(stderr, "dpcopula_report: write failed for %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "dpcopula_report: wrote %s (%d regression(s))\n",
               out_path.c_str(), regressions);
  return regressions > 0 ? 3 : 0;
}
