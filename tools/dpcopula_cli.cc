// dpcopula — command-line synthesizer.
//
// Reads a CSV of non-negative integer attributes (header row required),
// produces a differentially private synthetic CSV.
//
//   dpcopula --input data.csv --output synthetic.csv --epsilon 1.0
//
// Flags:
//   --input PATH        input CSV (header + integer cells)        [required]
//   --output PATH       output CSV                                [required]
//   --epsilon X         total privacy budget (default 1.0)
//   --k X               budget ratio eps1/eps2 (default 8)
//   --estimator NAME    kendall | mle (default kendall)
//   --family NAME       gaussian | t | auto (default gaussian)
//   --t-dof X           fixed t dof; 0 = estimate privately (default 0)
//   --no-hybrid         disable Algorithm 6 partitioning on small domains
//   --rows N            synthetic rows (default: same as input)
//   --oversample X      oversampling factor (default 1)
//   --threads N         worker threads (0 = all hardware threads; default 0;
//                       output is identical for every value)
//   --seed N            RNG seed (default 42)
//   --max-bad-rows N    quarantine up to N malformed/non-finite input rows
//                       (counted per reason) instead of failing (default 0)
//   --strict-csv        fail on the first malformed input row (the default;
//                       overrides --max-bad-rows)
//   --model-out PATH    also save the fitted DP model (non-hybrid only)
//   --model-in PATH     skip fitting: load a saved model and sample from it
//   --trace-json PATH   write a JSON run report (span tree, metrics, budget
//                       audit) after the run; also enables tracing/metrics
//   --trace-chrome PATH write the span timeline in Chrome trace-event JSON
//                       (load in Perfetto / chrome://tracing); also enables
//                       tracing
//   --profile           enable the stage profiler: per-stage latency
//                       histograms, peak RSS, and hardware counters where
//                       the kernel allows them (implies metrics)
//   --log-level LEVEL   trace|debug|info|warn|error|off (default warn)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/rng.h"
#include "core/dpcopula.h"
#include "core/hybrid.h"
#include "core/model_io.h"
#include "data/csv.h"
#include "obs/log.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace_export.h"

namespace {

struct CliArgs {
  std::string input;
  std::string output;
  double epsilon = 1.0;
  double k = 8.0;
  std::string estimator = "kendall";
  std::string family = "gaussian";
  double t_dof = 0.0;
  bool hybrid = true;
  long long rows = 0;
  double oversample = 1.0;
  int threads = 0;  // 0 = hardware concurrency.
  long long max_bad_rows = 0;
  bool strict_csv = false;
  unsigned long long seed = 42;
  std::string model_out;
  std::string model_in;
  std::string trace_json;
  std::string trace_chrome;
  bool profile = false;
  std::string log_level = "warn";
};

const char* FamilyName(dpcopula::core::CopulaFamily family) {
  switch (family) {
    case dpcopula::core::CopulaFamily::kGaussian:
      return "gaussian";
    case dpcopula::core::CopulaFamily::kStudentT:
      return "t";
    case dpcopula::core::CopulaFamily::kAutoAic:
      return "auto";
    case dpcopula::core::CopulaFamily::kEmpirical:
      return "empirical";
  }
  return "unknown";
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input data.csv --output synth.csv "
               "[--epsilon X] [--k X] [--estimator kendall|mle] "
               "[--family gaussian|t|auto] [--t-dof X] [--no-hybrid] "
               "[--rows N] [--oversample X] [--threads N] [--seed N] "
               "[--max-bad-rows N] [--strict-csv] "
               "[--trace-json PATH] [--trace-chrome PATH] [--profile] "
               "[--log-level LEVEL]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--input") {
      const char* v = next();
      if (!v) return false;
      args->input = v;
    } else if (flag == "--output") {
      const char* v = next();
      if (!v) return false;
      args->output = v;
    } else if (flag == "--epsilon") {
      const char* v = next();
      if (!v) return false;
      args->epsilon = std::atof(v);
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return false;
      args->k = std::atof(v);
    } else if (flag == "--estimator") {
      const char* v = next();
      if (!v) return false;
      args->estimator = v;
    } else if (flag == "--family") {
      const char* v = next();
      if (!v) return false;
      args->family = v;
    } else if (flag == "--t-dof") {
      const char* v = next();
      if (!v) return false;
      args->t_dof = std::atof(v);
    } else if (flag == "--no-hybrid") {
      args->hybrid = false;
    } else if (flag == "--rows") {
      const char* v = next();
      if (!v) return false;
      args->rows = std::atoll(v);
    } else if (flag == "--oversample") {
      const char* v = next();
      if (!v) return false;
      args->oversample = std::atof(v);
    } else if (flag == "--threads") {
      const char* v = next();
      if (!v) return false;
      args->threads = std::atoi(v);
    } else if (flag == "--max-bad-rows") {
      const char* v = next();
      if (!v) return false;
      args->max_bad_rows = std::atoll(v);
    } else if (flag == "--strict-csv") {
      args->strict_csv = true;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--model-out") {
      const char* v = next();
      if (!v) return false;
      args->model_out = v;
    } else if (flag == "--model-in") {
      const char* v = next();
      if (!v) return false;
      args->model_in = v;
    } else if (flag == "--trace-json") {
      const char* v = next();
      if (!v) return false;
      args->trace_json = v;
    } else if (flag == "--trace-chrome") {
      const char* v = next();
      if (!v) return false;
      args->trace_chrome = v;
    } else if (flag == "--profile") {
      args->profile = true;
    } else if (flag == "--log-level") {
      const char* v = next();
      if (!v) return false;
      args->log_level = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  // --model-in replaces --input (no original data needed to sample).
  return (!args->input.empty() || !args->model_in.empty()) &&
         !args->output.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpcopula;  // NOLINT(build/namespaces) — CLI binary.
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  obs::ObsConfig obs_config;
  if (!obs::ParseLogLevel(args.log_level, &obs_config.log_level)) {
    std::fprintf(stderr, "unknown log level '%s'\n", args.log_level.c_str());
    return 2;
  }
  // --trace-json needs both the span tree and the metrics section;
  // --trace-chrome only the spans; --profile implies metrics.
  obs_config.trace = !args.trace_json.empty() || !args.trace_chrome.empty();
  obs_config.metrics = !args.trace_json.empty();
  obs_config.profile = args.profile;
  obs::SetObsConfig(obs_config);

  // Hardware counters run across the whole process (CSV IO included); the
  // session is closed before any report is rendered so the profile gauges
  // it publishes land in them.
  std::optional<obs::ProfileSession> profile_session;
  if (args.profile) profile_session.emplace();

  // Written after a successful run (nullptr when no accountant exists, e.g.
  // sample-only mode).
  auto write_report = [&](const obs::BudgetAudit* audit) -> bool {
    profile_session.reset();
    bool ok = true;
    if (!args.trace_chrome.empty()) {
      Status cs = obs::WriteChromeTrace(args.trace_chrome);
      if (!cs.ok()) {
        std::fprintf(stderr, "failed to write chrome trace %s: %s\n",
                     args.trace_chrome.c_str(), cs.ToString().c_str());
        ok = false;
      } else {
        std::fprintf(stderr, "chrome trace written to %s\n",
                     args.trace_chrome.c_str());
      }
    }
    if (args.trace_json.empty()) return ok;
    Status ts = obs::WriteRunReport(args.trace_json, audit);
    if (!ts.ok()) {
      std::fprintf(stderr, "failed to write trace report %s: %s\n",
                   args.trace_json.c_str(), ts.ToString().c_str());
      return false;
    }
    std::fprintf(stderr, "trace report written to %s\n",
                 args.trace_json.c_str());
    return ok;
  };

  if (!args.model_in.empty()) {
    // Sample-only mode: load a published model and draw from it.
    auto model = core::LoadModel(args.model_in);
    if (!model.ok()) {
      std::fprintf(stderr, "failed to load model %s: %s\n",
                   args.model_in.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    Rng rng(args.seed);
    auto sample = core::SampleFromModel(
        *model, args.rows > 0 ? static_cast<std::size_t>(args.rows) : 0,
        &rng);
    if (!sample.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sample.status().ToString().c_str());
      return 1;
    }
    Status io = data::WriteCsv(*sample, args.output);
    if (!io.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", args.output.c_str(),
                   io.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "sampled %zu rows from %s into %s\n",
                 sample->num_rows(), args.model_in.c_str(),
                 args.output.c_str());
    // Sampling a published model is pure post-processing — no budget to
    // audit, but the span tree / metrics are still worth the report.
    return write_report(nullptr) ? 0 : 1;
  }

  data::Table input_table{data::Schema()};
  if (args.strict_csv || args.max_bad_rows <= 0) {
    auto table = data::ReadCsv(args.input);
    if (!table.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", args.input.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    input_table = std::move(*table);
  } else {
    data::ReadCsvOptions read_options;
    read_options.max_bad_rows = static_cast<std::size_t>(args.max_bad_rows);
    auto read = data::ReadCsvTolerant(args.input, read_options);
    if (!read.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", args.input.c_str(),
                   read.status().ToString().c_str());
      return 1;
    }
    const data::CsvReadStats& stats = read->stats;
    if (stats.bad_rows > 0) {
      std::fprintf(stderr,
                   "quarantined %zu bad rows (first at line %zu): "
                   "%zu too-many-cells, %zu too-few-cells, %zu non-numeric, "
                   "%zu non-finite\n",
                   stats.bad_rows, stats.first_bad_line,
                   stats.bad_too_many_cells, stats.bad_too_few_cells,
                   stats.bad_non_numeric, stats.bad_non_finite);
    }
    input_table = std::move(read->table);
  }
  const data::Table* table = &input_table;
  std::fprintf(stderr, "read %zu rows x %zu attributes from %s\n",
               table->num_rows(), table->num_columns(), args.input.c_str());

  core::DpCopulaOptions inner;
  inner.epsilon = args.epsilon;
  inner.budget_ratio_k = args.k;
  inner.oversample_factor = args.oversample;
  inner.num_threads = args.threads;
  if (args.rows > 0) {
    inner.num_synthetic_rows = static_cast<std::size_t>(args.rows);
  }
  if (args.estimator == "mle") {
    inner.estimator = core::CorrelationEstimator::kMle;
  } else if (args.estimator != "kendall") {
    std::fprintf(stderr, "unknown estimator '%s'\n", args.estimator.c_str());
    return 2;
  }
  if (args.family == "t") {
    inner.family = core::CopulaFamily::kStudentT;
    inner.t_dof = args.t_dof;
  } else if (args.family == "auto") {
    inner.family = core::CopulaFamily::kAutoAic;
  } else if (args.family != "gaussian") {
    std::fprintf(stderr, "unknown family '%s'\n", args.family.c_str());
    return 2;
  }

  Rng rng(args.seed);
  data::Table synthetic{data::Schema()};
  obs::BudgetAudit audit;
  if (args.hybrid) {
    core::HybridOptions hybrid;
    hybrid.epsilon = args.epsilon;
    hybrid.inner = inner;
    hybrid.num_threads = args.threads;
    auto result = core::SynthesizeHybrid(*table, hybrid, &rng);
    if (!result.ok()) {
      std::fprintf(stderr, "synthesis failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "hybrid: %lld partitions (%lld skipped)\n",
                 static_cast<long long>(result->num_partitions),
                 static_cast<long long>(result->num_skipped_partitions));
    std::fprintf(stderr, "budget spent: %.6f of %.6f\n",
                 result->budget.spent(), result->budget.total_epsilon());
    audit = obs::AuditFrom(result->budget);
    synthetic = std::move(result->synthetic);
  } else {
    auto result = core::Synthesize(*table, inner, &rng);
    if (!result.ok()) {
      std::fprintf(stderr, "synthesis failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "budget spent: %.6f of %.6f\n",
                 result->budget.spent(), result->budget.total_epsilon());
    std::fprintf(
        stderr,
        "estimator: kendall_rows_used=%lld mle_partitions=%lld "
        "correlation_repaired=%s family_used=%s t_dof_used=%g\n",
        static_cast<long long>(result->kendall_rows_used),
        static_cast<long long>(result->mle_partitions),
        result->correlation_repaired ? "yes" : "no",
        FamilyName(result->family_used), result->t_dof_used);
    audit = obs::AuditFrom(result->budget);
    if (!args.model_out.empty()) {
      const auto model = core::ModelFromSynthesis(table->schema(), *result);
      Status ms = core::SaveModel(model, args.model_out);
      if (!ms.ok()) {
        std::fprintf(stderr, "model save failed: %s\n",
                     ms.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "model saved to %s\n", args.model_out.c_str());
    }
    synthetic = std::move(result->synthetic);
  }

  Status io = data::WriteCsv(synthetic, args.output);
  if (!io.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", args.output.c_str(),
                 io.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu synthetic rows to %s\n",
               synthetic.num_rows(), args.output.c_str());
  return write_report(&audit) ? 0 : 1;
}
