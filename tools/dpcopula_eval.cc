// dpcopula_eval — utility/privacy report for a synthetic release.
//
// Compares a synthetic CSV against the original it was derived from:
//  - range-count workload accuracy (relative + absolute error),
//  - per-attribute marginal accuracy,
//  - empirical privacy audit (DCR distribution, attribute disclosure).
//
//   dpcopula_eval --original data.csv --synthetic synth.csv [--queries N]
//                 [--sanity S] [--threads N] [--seed N]
//                 [--max-bad-rows N] [--strict-csv]
//                 [--trace-json PATH] [--trace-chrome PATH] [--profile]
//                 [--log-level LEVEL]
//
// --threads parallelizes the O(n^2) DCR privacy audit (0 = all hardware
// threads); the report is identical for every thread count.
// --max-bad-rows quarantines up to N malformed/non-finite rows per input
// file (strict by default; --strict-csv forces the default explicitly).
// --trace-json writes a JSON run report (phase spans + metrics; no budget
// section — evaluation spends no privacy). --trace-chrome writes the span
// timeline in Chrome trace-event JSON (Perfetto / chrome://tracing).
// --profile enables the stage profiler (per-stage histograms, peak RSS,
// hardware counters where the kernel allows them).
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "baselines/range_estimator.h"
#include "common/rng.h"
#include "data/csv.h"
#include "obs/log.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "query/evaluator.h"
#include "query/fidelity_metrics.h"
#include "query/privacy_metrics.h"
#include "query/workload.h"

namespace {

struct CliArgs {
  std::string original;
  std::string synthetic;
  std::size_t queries = 500;
  double sanity = 1.0;
  int threads = 0;  // 0 = hardware concurrency.
  long long max_bad_rows = 0;
  bool strict_csv = false;
  unsigned long long seed = 42;
  std::string trace_json;
  std::string trace_chrome;
  bool profile = false;
  std::string log_level = "warn";
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--original") {
      const char* v = next();
      if (!v) return false;
      args->original = v;
    } else if (flag == "--synthetic") {
      const char* v = next();
      if (!v) return false;
      args->synthetic = v;
    } else if (flag == "--queries") {
      const char* v = next();
      if (!v) return false;
      args->queries = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--sanity") {
      const char* v = next();
      if (!v) return false;
      args->sanity = std::atof(v);
    } else if (flag == "--threads") {
      const char* v = next();
      if (!v) return false;
      args->threads = std::atoi(v);
    } else if (flag == "--max-bad-rows") {
      const char* v = next();
      if (!v) return false;
      args->max_bad_rows = std::atoll(v);
    } else if (flag == "--strict-csv") {
      args->strict_csv = true;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--trace-json") {
      const char* v = next();
      if (!v) return false;
      args->trace_json = v;
    } else if (flag == "--trace-chrome") {
      const char* v = next();
      if (!v) return false;
      args->trace_chrome = v;
    } else if (flag == "--profile") {
      args->profile = true;
    } else if (flag == "--log-level") {
      const char* v = next();
      if (!v) return false;
      args->log_level = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->original.empty() && !args->synthetic.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpcopula;  // NOLINT(build/namespaces) — CLI binary.
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s --original data.csv --synthetic synth.csv "
                 "[--queries N] [--sanity S] [--threads N] [--seed N] "
                 "[--max-bad-rows N] [--strict-csv] "
                 "[--trace-json PATH] [--trace-chrome PATH] [--profile] "
                 "[--log-level LEVEL]\n",
                 argv[0]);
    return 2;
  }

  obs::ObsConfig obs_config;
  if (!obs::ParseLogLevel(args.log_level, &obs_config.log_level)) {
    std::fprintf(stderr, "unknown log level '%s'\n", args.log_level.c_str());
    return 2;
  }
  obs_config.trace = !args.trace_json.empty() || !args.trace_chrome.empty();
  obs_config.metrics = !args.trace_json.empty();
  obs_config.profile = args.profile;
  obs::SetObsConfig(obs_config);

  // Closed before the reports render so the profile gauges land in them.
  std::optional<obs::ProfileSession> profile_session;
  if (args.profile) profile_session.emplace();

  const bool tolerant = !args.strict_csv && args.max_bad_rows > 0;
  data::ReadCsvOptions read_options;
  read_options.max_bad_rows =
      tolerant ? static_cast<std::size_t>(args.max_bad_rows) : 0;
  auto report_quarantine = [](const char* path,
                              const data::CsvReadStats& stats) {
    if (stats.bad_rows == 0) return;
    std::fprintf(stderr,
                 "%s: quarantined %zu bad rows (first at line %zu)\n", path,
                 stats.bad_rows, stats.first_bad_line);
  };

  Result<data::Table> original(data::Table{data::Schema()});
  if (tolerant) {
    auto read = data::ReadCsvTolerant(args.original, read_options);
    if (read.ok()) {
      report_quarantine(args.original.c_str(), read->stats);
      original = std::move(read->table);
    } else {
      original = read.status();
    }
  } else {
    original = data::ReadCsv(args.original);
  }
  if (!original.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.original.c_str(),
                 original.status().ToString().c_str());
    return 1;
  }
  // Read the synthetic data under the original's schema so both tables
  // agree on domains even if the synthetic file lacks extreme values.
  Result<data::Table> synthetic(data::Table{data::Schema()});
  if (tolerant) {
    auto read = data::ReadCsvTolerantWithSchema(
        args.synthetic, original->schema(), read_options);
    if (read.ok()) {
      report_quarantine(args.synthetic.c_str(), read->stats);
      synthetic = std::move(read->table);
    } else {
      synthetic = read.status();
    }
  } else {
    synthetic = data::ReadCsvWithSchema(args.synthetic, original->schema());
  }
  if (!synthetic.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", args.synthetic.c_str(),
                 synthetic.status().ToString().c_str());
    return 1;
  }
  std::printf("original:  %zu rows x %zu attributes\n", original->num_rows(),
              original->num_columns());
  std::printf("synthetic: %zu rows\n\n", synthetic->num_rows());

  Rng rng(args.seed);
  baselines::TableEstimator estimator(*synthetic, "synthetic");

  // Overall workload accuracy.
  {
    obs::Span workload_span("eval.workload");
    const auto workload =
        query::RandomWorkload(original->schema(), args.queries, &rng);
    auto eval =
        query::EvaluateWorkload(*original, estimator, workload, args.sanity);
    if (!eval.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n",
                   eval.status().ToString().c_str());
      return 1;
    }
    std::printf("random range-count workload (%zu queries, sanity %.2f):\n",
                args.queries, args.sanity);
    std::printf("  mean RE %.4f   median RE %.4f   mean ABS %.2f\n\n",
                eval->mean_relative_error, eval->median_relative_error,
                eval->mean_absolute_error);

    // Per-attribute marginal accuracy.
    std::printf("per-attribute marginal accuracy:\n");
    for (std::size_t j = 0; j < original->num_columns(); ++j) {
      auto marginal = query::MarginalWorkload(original->schema(), j,
                                              args.queries / 2, &rng);
      if (!marginal.ok()) continue;
      auto me = query::EvaluateWorkload(*original, estimator, *marginal,
                                        args.sanity);
      if (!me.ok()) continue;
      std::printf("  %-20s mean RE %.4f\n",
                  original->schema().attribute(j).name.c_str(),
                  me->mean_relative_error);
    }
  }

  // Statistical fidelity report.
  {
    obs::Span fidelity_span("eval.fidelity");
    auto fidelity = query::EvaluateFidelity(*original, *synthetic);
    if (fidelity.ok()) {
      std::printf("\nstatistical fidelity:\n");
      for (std::size_t j = 0; j < fidelity->marginal_tv.size(); ++j) {
        std::printf("  TV[%s] = %.4f\n",
                    original->schema().attribute(j).name.c_str(),
                    fidelity->marginal_tv[j]);
      }
      std::printf("  mean marginal TV = %.4f\n", fidelity->mean_marginal_tv);
      std::printf("  max pairwise tau deviation = %.4f\n",
                  fidelity->dependence_distance);
    }
  }

  // Privacy audit.
  {
    obs::Span dcr_span("eval.dcr");
    auto dcr = query::DistanceToClosestRecord(
        *synthetic, *original, /*max_rows=*/2000, args.threads);
    if (dcr.ok()) {
      std::printf(
          "\nprivacy audit:\n  DCR mean %.4f  median %.4f  p05 %.4f  "
          "exact-match rows %.2f%%\n",
          dcr->mean, dcr->median, dcr->p05, 100.0 * dcr->frac_zero);
    }
    for (std::size_t j = 0; j < original->num_columns(); ++j) {
      auto risk = query::AttributeDisclosureRisk(*synthetic, *original, j);
      auto baseline = query::MajorityGuessAccuracy(*original, j);
      if (risk.ok() && baseline.ok()) {
        std::printf("  disclosure[%s]: %.3f (majority baseline %.3f)\n",
                    original->schema().attribute(j).name.c_str(), *risk,
                    *baseline);
      }
    }
  }

  profile_session.reset();
  if (!args.trace_chrome.empty()) {
    Status cs = obs::WriteChromeTrace(args.trace_chrome);
    if (!cs.ok()) {
      std::fprintf(stderr, "failed to write chrome trace %s: %s\n",
                   args.trace_chrome.c_str(), cs.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "chrome trace written to %s\n",
                 args.trace_chrome.c_str());
  }
  if (!args.trace_json.empty()) {
    // Evaluation spends no privacy budget; the report carries only the
    // span tree and metrics.
    Status ts = obs::WriteRunReport(args.trace_json, nullptr);
    if (!ts.ok()) {
      std::fprintf(stderr, "failed to write trace report %s: %s\n",
                   args.trace_json.c_str(), ts.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace report written to %s\n",
                 args.trace_json.c_str());
  }
  return 0;
}
